/**
 * @file
 * Unit tests for the router and the NoC fabric.
 */

#include <gtest/gtest.h>

#include "noc/fabric.hh"
#include "noc/packet.hh"
#include "noc/router.hh"

namespace neurocube
{
namespace
{

Packet
operandTo(uint16_t dst, MacId mac = 0, OpId op = 0)
{
    Packet p;
    p.kind = PacketKind::State;
    p.dst = dst;
    p.mac = mac;
    p.opId = op;
    return p;
}

TEST(Packet, HardwareOpIdWraps)
{
    Packet p;
    p.opId = 300;
    EXPECT_EQ(p.hwOpId(), 44u);
    p.opId = 255;
    EXPECT_EQ(p.hwOpId(), 255u);
    EXPECT_EQ(Packet::bits, 36u);
}

class FabricTest : public ::testing::Test
{
  protected:
    NocFabric::Config
    meshConfig()
    {
        NocFabric::Config c;
        c.topology = NocTopology::Mesh2D;
        c.numNodes = 16;
        return c;
    }

    void
    build(const NocFabric::Config &c)
    {
        fabric_ = std::make_unique<NocFabric>(c, &root_);
    }

    /** Tick until routers drain or limit; returns ticks used. */
    Tick
    drain(Tick limit = 1000)
    {
        Tick t = 0;
        do {
            fabric_->tick(now_ + t++);
        } while (t < limit && !fabric_->routersIdle());
        now_ += t;
        return t;
    }

    StatGroup root_{nullptr, "test"};
    std::unique_ptr<NocFabric> fabric_;
    Tick now_ = 0;
};

TEST_F(FabricTest, LocalDeliveryMemToPe)
{
    build(meshConfig());
    fabric_->injectFromMem(5, operandTo(5), now_);
    drain();
    ASSERT_EQ(fabric_->peDelivery(5).size(), 1u);
    EXPECT_EQ(fabric_->localPackets(), 1u);
    EXPECT_EQ(fabric_->lateralPackets(), 0u);
}

TEST_F(FabricTest, LateralDeliveryCrossesMesh)
{
    build(meshConfig());
    // Node 0 (corner) to node 15 (opposite corner): 6 hops.
    fabric_->injectFromMem(0, operandTo(15), now_);
    Tick t = drain();
    ASSERT_EQ(fabric_->peDelivery(15).size(), 1u);
    EXPECT_EQ(fabric_->lateralPackets(), 1u);
    EXPECT_GE(t, 6u);
}

TEST_F(FabricTest, AllPairsRoute)
{
    build(meshConfig());
    for (uint16_t src = 0; src < 16; ++src) {
        for (uint16_t dst = 0; dst < 16; ++dst) {
            fabric_->injectFromMem(src, operandTo(dst), now_);
            drain();
            ASSERT_EQ(fabric_->peDelivery(dst).size(), 1u)
                << "src " << src << " dst " << dst;
            fabric_->peDelivery(dst).clear();
        }
    }
}

TEST_F(FabricTest, WriteBackRoutesToMemPort)
{
    build(meshConfig());
    Packet wb;
    wb.kind = PacketKind::WriteBack;
    wb.dst = 3;
    wb.dstIsMem = true;
    fabric_->injectFromPe(12, wb, now_);
    drain();
    ASSERT_EQ(fabric_->memDelivery(3).size(), 1u);
    EXPECT_EQ(fabric_->memDelivery(3).front().kind,
              PacketKind::WriteBack);
}

TEST_F(FabricTest, FullyConnectedSingleHop)
{
    NocFabric::Config c;
    c.topology = NocTopology::FullyConnected;
    c.numNodes = 16;
    build(c);
    fabric_->injectFromMem(0, operandTo(15), now_);
    Tick t = drain();
    ASSERT_EQ(fabric_->peDelivery(15).size(), 1u);
    // Direct channel: at most a couple of router traversals.
    EXPECT_LE(t, 4u);
}

TEST_F(FabricTest, FullyConnectedAllPairs)
{
    NocFabric::Config c;
    c.topology = NocTopology::FullyConnected;
    c.numNodes = 16;
    build(c);
    for (uint16_t src = 0; src < 16; ++src) {
        for (uint16_t dst = 0; dst < 16; ++dst) {
            fabric_->injectFromMem(src, operandTo(dst), now_);
            drain();
            ASSERT_EQ(fabric_->peDelivery(dst).size(), 1u)
                << "src " << src << " dst " << dst;
            fabric_->peDelivery(dst).clear();
        }
    }
}

TEST_F(FabricTest, BackpressureLimitsInjection)
{
    NocFabric::Config c = meshConfig();
    c.deliveryDepth = 4;
    build(c);
    // Fill a PE's delivery queue and never drain it; injection space
    // must eventually run out (buffers + delivery queue are finite).
    unsigned injected = 0;
    for (Tick t = 0; t < 200; ++t) {
        while (fabric_->memInjectSpace(2) > 0 && injected < 1000) {
            fabric_->injectFromMem(2, operandTo(2), now_);
            ++injected;
        }
        fabric_->tick(now_++);
    }
    // 4 delivery + 16 in + 16 out FIFO slots; allow generous slack
    // but far below the 1000 offered.
    EXPECT_LT(injected, 100u);
    EXPECT_GE(injected, 4u);
}

TEST_F(FabricTest, LatencyAccounted)
{
    build(meshConfig());
    fabric_->injectFromMem(0, operandTo(15), now_);
    drain();
    EXPECT_GE(fabric_->meanLatency(), 6.0);
    EXPECT_EQ(fabric_->ejectedPackets(), 1u);
}

TEST_F(FabricTest, LateralFraction)
{
    build(meshConfig());
    fabric_->injectFromMem(0, operandTo(0), now_);
    fabric_->injectFromMem(0, operandTo(1), now_);
    drain();
    fabric_->peDelivery(0).clear();
    fabric_->peDelivery(1).clear();
    EXPECT_DOUBLE_EQ(fabric_->lateralFraction(), 0.5);
}

TEST(Router, RotatingPriorityIsFair)
{
    // Two inputs contending for one output should share it roughly
    // evenly thanks to the rotating daisy chain.
    Router::Config rc;
    rc.numPorts = 3;
    rc.bufferDepth = 16;
    rc.numNodes = 1;
    rc.portWidth = {1, 1, 1};
    StatGroup root(nullptr, "t");
    Router router(rc, &root, "r");
    router.setRoute(routeIndex(0, false, 1), 2);

    Packet p = operandTo(0);
    for (int cycle = 0; cycle < 100; ++cycle) {
        for (unsigned in = 0; in < 2; ++in) {
            if (router.inputSpace(in) > 0)
                router.pushInput(in, p);
        }
        router.tick();
        auto &out = router.outputQueue(2);
        while (!out.empty())
            out.pop_front();
    }
    // The crossbar moves one packet per output per cycle; both
    // inputs stay saturated, so the sum is ~100 and the split fair.
    EXPECT_EQ(router.packetsSwitched(), 100u);
}

TEST(Router, RotatingArbiterBoundsWaitingTime)
{
    // Starvation freedom of the rotating daisy chain (Section III-C):
    // with all six input ports of a mesh-sized router saturated and
    // contending for one output, every input must win within any six
    // consecutive grants (the chain visits each port once per
    // rotation period, so the worst-case wait is one full rotation).
    constexpr unsigned Inputs = 6;
    Router::Config rc;
    rc.numPorts = Inputs;
    rc.bufferDepth = 4;
    rc.numNodes = 1;
    rc.portWidth.assign(Inputs, 1);
    StatGroup root(nullptr, "t");
    Router router(rc, &root, "r");
    router.setRoute(routeIndex(0, false, 1), Inputs - 1);

    std::vector<uint16_t> grants;
    for (int cycle = 0; cycle < 120; ++cycle) {
        for (unsigned in = 0; in < Inputs; ++in) {
            // Tag each packet with its input port via the src field.
            Packet p = operandTo(0);
            p.src = VaultId(in);
            if (router.inputSpace(in) > 0)
                router.pushInput(in, p);
        }
        router.tick();
        auto &out = router.outputQueue(Inputs - 1);
        while (!out.empty()) {
            grants.push_back(uint16_t(out.front().src));
            out.pop_front();
        }
    }

    ASSERT_GE(grants.size(), 2 * Inputs);
    for (size_t start = 0; start + Inputs <= grants.size(); ++start) {
        unsigned seen = 0;
        for (size_t i = start; i < start + Inputs; ++i)
            seen |= 1u << grants[i];
        EXPECT_EQ(seen, (1u << Inputs) - 1)
            << "input starved in the grant window at " << start;
    }
}

TEST(Router, CreditViolationAsserts)
{
    Router::Config rc;
    rc.numPorts = 2;
    rc.bufferDepth = 2;
    rc.numNodes = 1;
    StatGroup root(nullptr, "t");
    Router router(rc, &root, "r");
    Packet p = operandTo(0);
    router.pushInput(0, p);
    router.pushInput(0, p);
    EXPECT_EQ(router.inputSpace(0), 0u);
    EXPECT_DEATH(router.pushInput(0, p), "credit violation");
}

} // namespace
} // namespace neurocube
