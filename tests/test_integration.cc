/**
 * @file
 * End-to-end integration tests: the cycle-level machine must produce
 * bit-identical outputs to the sequential reference model for every
 * layer type and mapping policy, while its cycle counts respect the
 * machine's physical bounds.
 */

#include <gtest/gtest.h>

#include "core/neurocube.hh"
#include "nn/reference.hh"

namespace neurocube
{
namespace
{

/** Compare two tensors bit-for-bit; report the first mismatch. */
::testing::AssertionResult
tensorsEqual(const Tensor &a, const Tensor &b)
{
    if (a.maps() != b.maps() || a.height() != b.height()
        || a.width() != b.width()) {
        return ::testing::AssertionFailure()
            << "shape " << a.maps() << "x" << a.height() << "x"
            << a.width() << " vs " << b.maps() << "x" << b.height()
            << "x" << b.width();
    }
    for (unsigned m = 0; m < a.maps(); ++m) {
        for (unsigned y = 0; y < a.height(); ++y) {
            for (unsigned x = 0; x < a.width(); ++x) {
                if (!(a.at(m, y, x) == b.at(m, y, x))) {
                    return ::testing::AssertionFailure()
                        << "mismatch at (" << m << "," << y << ","
                        << x << "): " << a.at(m, y, x).toDouble()
                        << " vs " << b.at(m, y, x).toDouble();
                }
            }
        }
    }
    return ::testing::AssertionSuccess();
}

/** Run net on the machine and compare every layer to the reference. */
RunResult
runAndVerify(const NeurocubeConfig &config, const NetworkDesc &net,
             uint64_t seed)
{
    NetworkData data = NetworkData::randomized(net, seed);
    Tensor input(net.inputMaps(), net.inputHeight(), net.inputWidth());
    Rng rng(seed + 1);
    input.randomize(rng);

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    auto expect = referenceForward(net, data, input);
    for (size_t i = 0; i < net.layers.size(); ++i) {
        EXPECT_TRUE(tensorsEqual(cube.layerOutput(i), expect[i]))
            << "layer " << i << " (" << net.layers[i].name << ")";
    }
    return run;
}

NetworkDesc
tinyConvNet()
{
    NetworkDesc net;
    net.name = "tiny-conv";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();
    return net;
}

TEST(Integration, ChannelwiseConvMatchesReference)
{
    runAndVerify(NeurocubeConfig{}, tinyConvNet(), 1);
}

TEST(Integration, ConvWithoutDuplicationMatchesReference)
{
    NeurocubeConfig config;
    config.mapping.duplicateConvHalo = false;
    RunResult run = runAndVerify(config, tinyConvNet(), 2);
    EXPECT_GT(run.layers[0].lateralPackets, 0u);
}

TEST(Integration, ConvWithDuplicationHasNoLateralTraffic)
{
    NeurocubeConfig config;
    config.mapping.duplicateConvHalo = true;
    RunResult run = runAndVerify(config, tinyConvNet(), 3);
    EXPECT_EQ(run.layers[0].lateralPackets, 0u);
}

TEST(Integration, DuplicatedModeNeverOverflowsOpCache)
{
    // In the paper's mapping (full duplication) every PE consumes a
    // single in-order stream; when its tiles are MAC-aligned (each
    // per-plane tile a multiple of 16 neurons) the 16x64-entry cache
    // must suffice. Out 32x32 -> 8x8 = 64-neuron tiles.
    NeurocubeConfig config;
    Neurocube cube(config);
    NetworkDesc net;
    net.name = "aligned-conv";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 34;
    conv.inHeight = 34;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();
    NetworkData data = NetworkData::randomized(net, 77);
    Tensor input(2, 34, 34);
    Rng rng(78);
    input.randomize(rng);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    cube.runForward();
    EXPECT_EQ(cube.totalCacheOverflows(), 0u);
}

TEST(Integration, PoolingMatchesReference)
{
    NetworkDesc net;
    net.name = "pool-net";
    LayerDesc pool;
    pool.type = LayerType::Pool;
    pool.name = "pool";
    pool.inWidth = 24;
    pool.inHeight = 18;
    pool.inMaps = 3;
    pool.outMaps = 3;
    pool.kernel = 2;
    pool.stride = 2;
    net.layers.push_back(pool);
    net.validate();
    runAndVerify(NeurocubeConfig{}, net, 4);
}

TEST(Integration, FullConvAccumulationMatchesReference)
{
    NetworkDesc net;
    net.name = "full-conv";
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "fc1";
    fc.inWidth = 9;
    fc.inHeight = 7;
    fc.inMaps = 5;
    fc.outMaps = 3;
    fc.kernel = 1;
    fc.channelwise = false;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    runAndVerify(NeurocubeConfig{}, net, 5);
}

TEST(Integration, SplitFullConvPassesMatchSplitReference)
{
    // The partial-sum programming mode: one pass per (outMap,
    // inMap), intermediate sums truncated to Q1.7.8 and re-read with
    // weight 1.0. Verified against the split-semantics reference.
    NetworkDesc net;
    net.name = "split-conv";
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "fc1";
    fc.inWidth = 9;
    fc.inHeight = 7;
    fc.inMaps = 4;
    fc.outMaps = 3;
    fc.kernel = 3;
    fc.channelwise = false;
    fc.activation = ActivationKind::Tanh;
    net.layers.push_back(fc);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 44);
    Tensor input(4, 7, 9);
    Rng rng(45);
    input.randomize(rng);

    NeurocubeConfig config;
    config.splitFullConvPasses = true;
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    LayerResult r = cube.runLayer(0);
    EXPECT_EQ(r.passes, 12u); // 3 out maps x 4 in maps

    Tensor expect =
        referenceLayerSplitPasses(fc, data.weights[0], input);
    EXPECT_TRUE(tensorsEqual(cube.layerOutput(0), expect));
}

TEST(Integration, FullConvSpatialKernelMatchesReference)
{
    NetworkDesc net;
    net.name = "full-conv-3x3";
    LayerDesc fc;
    fc.type = LayerType::Conv2D;
    fc.name = "conv";
    fc.inWidth = 11;
    fc.inHeight = 9;
    fc.inMaps = 2;
    fc.outMaps = 2;
    fc.kernel = 3;
    fc.channelwise = false;
    fc.activation = ActivationKind::ReLU;
    net.layers.push_back(fc);
    net.validate();
    runAndVerify(NeurocubeConfig{}, net, 6);
}

TEST(Integration, FullyConnectedDuplicatedMatchesReference)
{
    NeurocubeConfig config;
    config.mapping.duplicateFcInput = true;
    RunResult run =
        runAndVerify(config, threeLayerMlp(48, 32, 10), 7);
    // Fig. 10d: duplicated input keeps FC traffic local.
    EXPECT_EQ(run.layers[0].lateralPackets, 0u);
}

TEST(Integration, FullyConnectedPartitionedMatchesReference)
{
    NeurocubeConfig config;
    config.mapping.duplicateFcInput = false;
    RunResult run =
        runAndVerify(config, threeLayerMlp(48, 32, 10), 8);
    // Fig. 10e / Fig. 14c: partitioned input makes most traffic
    // lateral.
    EXPECT_GT(run.layers[0].lateralFraction(), 0.5);
}

TEST(Integration, Fc2dInputMatchesReference)
{
    // MLP over a 2D multi-map input exercises the plane-major
    // flattening and the non-contiguous weight slices.
    NetworkDesc net;
    net.name = "fc2d";
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 10;
    fc.inHeight = 6;
    fc.inMaps = 2;
    fc.outMaps = 18;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    for (bool dup : {true, false}) {
        NeurocubeConfig config;
        config.mapping.duplicateFcInput = dup;
        runAndVerify(config, net, 9);
    }
}

TEST(Integration, MultiLayerPipelineMatchesReference)
{
    NetworkDesc net;
    net.name = "pipeline";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 18;
    conv.inHeight = 14;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);

    LayerDesc pool = nextLayerTemplate(conv);
    pool.type = LayerType::Pool;
    pool.name = "pool";
    pool.outMaps = pool.inMaps;
    pool.kernel = 2;
    pool.stride = 2;
    net.layers.push_back(pool);

    LayerDesc fc = nextLayerTemplate(pool);
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.outMaps = 9;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();

    runAndVerify(NeurocubeConfig{}, net, 10);
}

TEST(Integration, WeightMemoryModeMatchesReference)
{
    NeurocubeConfig config;
    config.mapping.weightsInPeMemory = true;
    runAndVerify(config, tinyConvNet(), 11);
}

TEST(Integration, FullyConnectedNocMatchesReference)
{
    NeurocubeConfig config;
    config.noc.topology = NocTopology::FullyConnected;
    config.mapping.duplicateFcInput = false;
    runAndVerify(config, threeLayerMlp(48, 32, 10), 12);
}

TEST(Integration, Ddr3TwoChannelsMatchesReference)
{
    NeurocubeConfig config;
    config.dram = DramParams::ddr3();
    runAndVerify(config, tinyConvNet(), 13);
}

TEST(Integration, CyclesRespectMemoryBound)
{
    // A conv layer's cycles can never beat the DRAM streaming bound:
    // one operand pair per vault-word, one word per tick per vault.
    NeurocubeConfig config;
    Neurocube cube(config);
    NetworkDesc net = tinyConvNet();
    NetworkData data = NetworkData::randomized(net, 20);
    Tensor input(2, 16, 20);
    Rng rng(21);
    input.randomize(rng);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    LayerResult r = cube.runLayer(0);
    uint64_t pairs = r.ops / 2;
    // Words needed across 16 vaults, perfectly balanced.
    uint64_t min_cycles = pairs / 16;
    EXPECT_GE(r.cycles, min_cycles);
    EXPECT_EQ(r.ops, net.layers[0].totalOps());
}

TEST(Integration, LongIdleGapDoesNotPerturbSteadyState)
{
    // advanceIdleTo jumps the clock in O(1) — a trillion-tick idle
    // gap (an open-loop server draining its queue) must neither cost
    // wall time proportional to the gap nor perturb any machine
    // state: the post-gap run repeats the pre-gap steady state's
    // cycle count exactly.
    NetworkDesc net = tinyConvNet();
    NetworkData data = NetworkData::randomized(net, 21);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(22);
    input.randomize(rng);

    Neurocube cube((NeurocubeConfig()));
    const LayerDesc &layer = net.layers[0];

    // Warm up to the steady state (run 2 == run 3: DRAM row-buffer
    // and cache state converge after the first pass).
    cube.runSingleLayer(layer, data.weights[0], input, nullptr);
    LayerResult warm =
        cube.runSingleLayer(layer, data.weights[0], input, nullptr);
    LayerResult steady =
        cube.runSingleLayer(layer, data.weights[0], input, nullptr);
    ASSERT_EQ(warm.cycles, steady.cycles);

    const Tick gap = Tick(1) << 40; // ~10^12 idle ticks
    Tick before = cube.now();
    cube.advanceIdleTo(before + gap);
    EXPECT_EQ(cube.now(), before + gap);

    Tensor output;
    LayerResult after =
        cube.runSingleLayer(layer, data.weights[0], input, &output);
    EXPECT_EQ(after.cycles, steady.cycles);
    EXPECT_TRUE(tensorsEqual(
        output, referenceForward(net, data, input)[0]));
}

TEST(Integration, StatsDumpIsWellFormed)
{
    NeurocubeConfig config;
    Neurocube cube(config);
    NetworkDesc net = tinyConvNet();
    NetworkData data = NetworkData::randomized(net, 30);
    Tensor input(2, 16, 20);
    Rng rng(31);
    input.randomize(rng);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    cube.runForward();
    std::ostringstream os;
    cube.stats().dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("neurocube.passes"), std::string::npos);
    EXPECT_NE(out.find("vault0"), std::string::npos);
    EXPECT_NE(out.find("noc"), std::string::npos);
}

} // namespace
} // namespace neurocube
