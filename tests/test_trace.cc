/**
 * @file
 * Trace subsystem tests: recorder ring behaviour (wraparound,
 * ordering, window/mask filtering), the NC_TRACE publishing macro,
 * Chrome-JSON well-formedness (re-parsed with a standalone JSON
 * parser), and an end-to-end run of the machine with tracing enabled
 * producing loadable JSON and CSV files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/neurocube.hh"
#include "trace/chrome_exporter.hh"
#include "trace/energy.hh"
#include "trace/phase_detector.hh"
#include "trace/stream_exporter.hh"
#include "trace/timeseries_exporter.hh"
#include "trace/trace.hh"

namespace neurocube
{
namespace
{

/** Sink that stores every delivered event. */
struct CollectingSink : TraceSink
{
    std::vector<TraceEvent> events;
    bool finished = false;

    void
    consume(const TraceEvent *batch, size_t count) override
    {
        events.insert(events.end(), batch, batch + count);
    }

    void finish() override { finished = true; }
};

/**
 * Minimal recursive-descent JSON validator (RFC 8259 grammar, no
 * value tree built). Counts the elements of a top-level
 * "traceEvents" array so tests can assert the trace is non-trivial.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(std::string text)
        : text_(std::move(text)), p_(text_.c_str()),
          end_(p_ + text_.size())
    {
    }

    /** True when the whole input is one well-formed JSON value. */
    bool
    parse()
    {
        bool ok = value(0);
        skipWs();
        return ok && p_ == end_;
    }

    /** Elements in the top-level "traceEvents" array. */
    size_t traceEvents() const { return traceEvents_; }

  private:
    static constexpr int maxDepth = 64;

    void
    skipWs()
    {
        while (p_ != end_
               && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n'
                   || *p_ == '\r')) {
            ++p_;
        }
    }

    bool
    literal(const char *word)
    {
        for (; *word; ++word, ++p_) {
            if (p_ == end_ || *p_ != *word)
                return false;
        }
        return true;
    }

    bool
    string(std::string *out = nullptr)
    {
        if (p_ == end_ || *p_ != '"')
            return false;
        ++p_;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    return false;
                switch (*p_) {
                  case '"': case '\\': case '/': case 'b':
                  case 'f': case 'n': case 'r': case 't':
                    ++p_;
                    break;
                  case 'u':
                    ++p_;
                    for (int i = 0; i < 4; ++i, ++p_) {
                        if (p_ == end_ || !isxdigit(uint8_t(*p_)))
                            return false;
                    }
                    break;
                  default:
                    return false;
                }
            } else {
                if (out)
                    out->push_back(*p_);
                ++p_;
            }
        }
        if (p_ == end_)
            return false;
        ++p_; // closing quote
        return true;
    }

    bool
    number()
    {
        if (p_ != end_ && *p_ == '-')
            ++p_;
        if (p_ == end_ || !isdigit(uint8_t(*p_)))
            return false;
        while (p_ != end_ && isdigit(uint8_t(*p_)))
            ++p_;
        if (p_ != end_ && *p_ == '.') {
            ++p_;
            if (p_ == end_ || !isdigit(uint8_t(*p_)))
                return false;
            while (p_ != end_ && isdigit(uint8_t(*p_)))
                ++p_;
        }
        if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
            ++p_;
            if (p_ != end_ && (*p_ == '+' || *p_ == '-'))
                ++p_;
            if (p_ == end_ || !isdigit(uint8_t(*p_)))
                return false;
            while (p_ != end_ && isdigit(uint8_t(*p_)))
                ++p_;
        }
        return true;
    }

    bool
    array(int depth, size_t *count)
    {
        ++p_; // '['
        skipWs();
        size_t n = 0;
        if (p_ != end_ && *p_ == ']') {
            ++p_;
        } else {
            while (true) {
                if (!value(depth + 1))
                    return false;
                ++n;
                skipWs();
                if (p_ != end_ && *p_ == ',') {
                    ++p_;
                    skipWs();
                    continue;
                }
                if (p_ == end_ || *p_ != ']')
                    return false;
                ++p_;
                break;
            }
        }
        if (count)
            *count = n;
        return true;
    }

    bool
    object(int depth)
    {
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return false;
            ++p_;
            skipWs();
            if (depth == 0 && key == "traceEvents" && p_ != end_
                && *p_ == '[') {
                size_t n = 0;
                if (!array(depth + 1, &n))
                    return false;
                traceEvents_ = n;
            } else if (!value(depth + 1)) {
                return false;
            }
            skipWs();
            if (p_ != end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            if (p_ == end_ || *p_ != '}')
                return false;
            ++p_;
            return true;
        }
    }

    bool
    value(int depth)
    {
        if (depth > maxDepth)
            return false;
        skipWs();
        if (p_ == end_)
            return false;
        switch (*p_) {
          case '{':
            return object(depth);
          case '[':
            return array(depth, nullptr);
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    std::string text_;
    const char *p_;
    const char *end_;
    size_t traceEvents_ = 0;
};

TEST(JsonChecker, AcceptsAndRejects)
{
    EXPECT_TRUE(JsonChecker("{}").parse());
    EXPECT_TRUE(JsonChecker("[1, -2.5e3, \"a\\nb\", true, null]")
                    .parse());
    EXPECT_TRUE(JsonChecker("{\"a\":{\"b\":[{},[]]}}").parse());
    EXPECT_FALSE(JsonChecker("{").parse());
    EXPECT_FALSE(JsonChecker("[1,]").parse());
    EXPECT_FALSE(JsonChecker("{\"a\":}").parse());
    EXPECT_FALSE(JsonChecker("01a").parse());
    EXPECT_FALSE(JsonChecker("{} {}").parse());
    JsonChecker counted("{\"traceEvents\":[{},{},{}]}");
    EXPECT_TRUE(counted.parse());
    EXPECT_EQ(counted.traceEvents(), 3u);
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(TraceRecorder(100).capacity(), 128u);
    EXPECT_EQ(TraceRecorder(256).capacity(), 256u);
    EXPECT_EQ(TraceRecorder(1).capacity(), 64u);
}

TEST(TraceRecorder, WraparoundKeepsEveryEventInOrder)
{
    TraceRecorder recorder(64);
    CollectingSink sink;
    recorder.addSink(&sink);

    constexpr uint64_t total = 1000; // ~15x the ring capacity
    for (uint64_t i = 0; i < total; ++i) {
        recorder.setNow(Tick(i));
        recorder.record(TraceComponent::Router, uint16_t(i % 16),
                        TraceEventType::FlitEnqueue, uint32_t(i), i);
    }
    recorder.finish();

    EXPECT_EQ(recorder.recorded(), total);
    ASSERT_EQ(sink.events.size(), total);
    EXPECT_TRUE(sink.finished);
    for (uint64_t i = 0; i < total; ++i) {
        EXPECT_EQ(sink.events[i].tick, Tick(i));
        EXPECT_EQ(sink.events[i].value, i);
        EXPECT_EQ(sink.events[i].instance, uint16_t(i % 16));
    }
}

TEST(TraceRecorder, WindowAndComponentMaskFilter)
{
    TraceRecorder recorder(64);
    CollectingSink sink;
    recorder.addSink(&sink);
    recorder.setWindow(10, 20);

    for (Tick t = 0; t < 30; ++t) {
        recorder.setNow(t);
        recorder.record(TraceComponent::Pe, 0,
                        TraceEventType::MacBusy, 0, t);
    }
    recorder.finish();
    ASSERT_EQ(sink.events.size(), 10u);
    EXPECT_EQ(sink.events.front().tick, Tick(10));
    EXPECT_EQ(sink.events.back().tick, Tick(19));

    TraceRecorder masked(64);
    CollectingSink pe_only;
    masked.addSink(&pe_only);
    masked.setComponentMask(1u << unsigned(TraceComponent::Pe));
    masked.record(TraceComponent::Router, 0,
                  TraceEventType::FlitEnqueue);
    masked.record(TraceComponent::Pe, 1, TraceEventType::MacBusy);
    masked.record(TraceComponent::Vault, 2,
                  TraceEventType::DramWord);
    masked.finish();
    ASSERT_EQ(pe_only.events.size(), 1u);
    EXPECT_EQ(pe_only.events[0].component, TraceComponent::Pe);
}

TEST(TraceRecorder, WindowSamplingThinsNonExemptComponents)
{
    TraceRecorder recorder(256);
    CollectingSink sink;
    recorder.addSink(&sink);
    // 10-tick windows, record 1 in 3: the windows starting at ticks
    // 0, 30 and 60 are sampled; everything else is dropped at the
    // recording site — except the Sim component, which is exempt by
    // default so run-structure markers and spans survive sampling.
    recorder.setSampling(10, 3);
    EXPECT_EQ(recorder.samplePeriod(), 3u);
    EXPECT_TRUE(recorder.windowSampled(0));
    EXPECT_TRUE(recorder.windowSampled(9));
    EXPECT_FALSE(recorder.windowSampled(10));
    EXPECT_FALSE(recorder.windowSampled(29));
    EXPECT_TRUE(recorder.windowSampled(30));

    for (Tick t = 0; t < 90; ++t) {
        recorder.setNow(t);
        recorder.record(TraceComponent::Pe, 0, TraceEventType::MacBusy,
                        0, t);
        recorder.record(TraceComponent::Sim, 0,
                        TraceEventType::LaneDone, 0, t);
    }
    recorder.finish();

    size_t pe = 0, sim = 0;
    for (const TraceEvent &e : sink.events) {
        if (e.component == TraceComponent::Pe)
            ++pe;
        else if (e.component == TraceComponent::Sim)
            ++sim;
    }
    EXPECT_EQ(pe, 30u);  // 3 sampled windows x 10 ticks
    EXPECT_EQ(sim, 90u); // exempt: full fidelity
}

TEST(TraceRecorder, SamplePeriodOneRecordsEverything)
{
    TraceRecorder recorder(256);
    CollectingSink sink;
    recorder.addSink(&sink);
    recorder.setSampling(10, 1);
    for (Tick t = 0; t < 50; ++t) {
        recorder.setNow(t);
        recorder.record(TraceComponent::Router, 0,
                        TraceEventType::FlitEnqueue, 0, t);
    }
    recorder.finish();
    EXPECT_EQ(sink.events.size(), 50u);
}

#if NEUROCUBE_TRACE_ENABLED
TEST(TraceRecorder, MacroPublishesToActiveRecorder)
{
    // No active recorder: the macro must be a safe no-op.
    NC_TRACE(TraceComponent::Pe, 0, TraceEventType::MacBusy, 1, 2);

    TraceRecorder recorder(64);
    CollectingSink sink;
    recorder.addSink(&sink);
    trace::setActiveRecorder(&recorder);
    NC_TRACE_TICK(Tick(42));
    NC_TRACE(TraceComponent::Pe, 7, TraceEventType::MacBusy, 3, 16);
    trace::setActiveRecorder(nullptr);
    NC_TRACE(TraceComponent::Pe, 0, TraceEventType::MacBusy, 1, 2);
    recorder.finish();

    ASSERT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(sink.events[0].tick, Tick(42));
    EXPECT_EQ(sink.events[0].instance, 7u);
    EXPECT_EQ(sink.events[0].arg, 3u);
    EXPECT_EQ(sink.events[0].value, 16u);
}
#endif

/** Push one synthetic event through a recorder into @p sink. */
void
feed(TraceSink &sink, Tick tick, TraceComponent component,
     uint16_t instance, TraceEventType type, uint32_t arg,
     uint64_t value)
{
    TraceEvent event;
    event.tick = tick;
    event.component = component;
    event.type = type;
    event.instance = instance;
    event.arg = arg;
    event.value = value;
    sink.consume(&event, 1);
}

TEST(ChromeExporter, EmitsWellFormedJson)
{
    std::ostringstream os;
    TraceTopology topology;
    topology.numRouters = 4;
    topology.numPes = 4;
    topology.numVaults = 4;
    ChromeTraceExporter exporter(os, topology, 16);

    for (Tick t = 0; t < 100; ++t) {
        feed(exporter, t, TraceComponent::Router, uint16_t(t % 4),
             TraceEventType::FlitEnqueue, 0, t % 3);
        if (t % 16 == 0) {
            feed(exporter, t, TraceComponent::Pe, 1,
                 TraceEventType::MacBusy, 12, 16);
            feed(exporter, t, TraceComponent::Vault, 2,
                 TraceEventType::DramRowActivate, 1, t);
        }
        if (t == 10 || t == 60) {
            feed(exporter, t, TraceComponent::Png, 3,
                 TraceEventType::PngPhase,
                 uint32_t(t == 10 ? PngFsmPhase::Generating
                                  : PngFsmPhase::Done),
                 0);
        }
    }
    exporter.finish();

    JsonChecker checker(os.str());
    EXPECT_TRUE(checker.parse()) << os.str().substr(0, 400);
    EXPECT_GT(checker.traceEvents(), 20u);
}

TEST(ChromeExporter, TrackPidsAreDisjointPerComponent)
{
    EXPECT_EQ(ChromeTraceExporter::trackPid(TraceComponent::Router, 3),
              1003u);
    EXPECT_EQ(ChromeTraceExporter::trackPid(TraceComponent::Pe, 15),
              2015u);
    EXPECT_EQ(ChromeTraceExporter::trackPid(TraceComponent::Png, 0),
              3000u);
    EXPECT_EQ(ChromeTraceExporter::trackPid(TraceComponent::Vault, 9),
              4009u);
}

TEST(TraceRecorder, ThreadedConsumerDrainsConcurrently)
{
    // Many more events than the ring holds: the producer must wait
    // for the consumer thread instead of losing or reordering events
    // (run under the tsan preset to check the handoff).
    TraceRecorder recorder(64);
    CollectingSink sink;
    recorder.addSink(&sink);
    recorder.startConsumerThread();

    constexpr uint64_t total = 50000;
    for (uint64_t i = 0; i < total; ++i) {
        recorder.setNow(Tick(i));
        recorder.record(TraceComponent::Pe, uint16_t(i % 16),
                        TraceEventType::MacBusy, uint32_t(i), i);
    }
    recorder.finish();

    ASSERT_EQ(sink.events.size(), total);
    EXPECT_TRUE(sink.finished);
    for (uint64_t i = 0; i < total; ++i) {
        ASSERT_EQ(sink.events[i].value, i);
        ASSERT_EQ(sink.events[i].tick, Tick(i));
    }
}

TEST(TraceRecorder, ConsumerThreadStopIsIdempotent)
{
    TraceRecorder recorder(64);
    CollectingSink sink;
    recorder.addSink(&sink);
    recorder.startConsumerThread();
    recorder.startConsumerThread(); // second start is a no-op
    recorder.record(TraceComponent::Pe, 0, TraceEventType::MacBusy);
    recorder.stopConsumerThread();
    recorder.stopConsumerThread(); // second stop is a no-op
    recorder.finish();
    EXPECT_EQ(sink.events.size(), 1u);
}

TEST(StreamExporter, RoundTripPreservesEvents)
{
    std::stringstream buffer(std::ios::in | std::ios::out
                             | std::ios::binary);
    TraceTopology topology;
    topology.numRouters = 16;
    topology.numPes = 16;
    topology.numVaults = 16;
    TraceStreamWriter writer(buffer, topology);

    for (Tick t = 0; t < 100; ++t) {
        feed(writer, t, TraceComponent::Router, uint16_t(t % 16),
             TraceEventType::LinkFlit, uint32_t(t), t * 3);
    }
    writer.finish();

    TraceStreamReader reader(buffer);
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.header().version, 1u);
    EXPECT_EQ(reader.header().eventBytes, sizeof(TraceEvent));
    EXPECT_EQ(reader.header().numPes, 16u);

    TraceEvent event;
    size_t n = 0;
    while (reader.next(event)) {
        EXPECT_EQ(event.tick, Tick(n));
        EXPECT_EQ(event.component, TraceComponent::Router);
        EXPECT_EQ(event.value, n * 3);
        ++n;
    }
    EXPECT_EQ(n, 100u);
}

TEST(StreamExporter, ReaderRejectsForeignStream)
{
    std::stringstream garbage("this is not a trace stream at all");
    TraceStreamReader reader(garbage);
    EXPECT_FALSE(reader.valid());
    TraceEvent event;
    EXPECT_FALSE(reader.next(event));
}

/** A complete binary stream with @p events records, as raw bytes. */
std::string
wellFormedStream(size_t events)
{
    std::stringstream buffer(std::ios::in | std::ios::out
                             | std::ios::binary);
    TraceTopology topology;
    topology.numRouters = 16;
    topology.numPes = 16;
    topology.numVaults = 16;
    TraceStreamWriter writer(buffer, topology);
    for (Tick t = 0; t < Tick(events); ++t) {
        feed(writer, t, TraceComponent::Pe, 0,
             TraceEventType::MacBusy, 1, t);
    }
    writer.finish();
    return buffer.str();
}

TEST(StreamExporter, ReaderToleratesTruncatedHeader)
{
    // A viewer can attach to a FIFO whose writer dies mid-header:
    // every truncation point must yield invalid, never a crash or a
    // garbage header accepted as valid.
    std::string full = wellFormedStream(1);
    for (size_t len = 0; len < sizeof(TraceStreamHeader); ++len) {
        std::stringstream cut(full.substr(0, len),
                              std::ios::in | std::ios::binary);
        TraceStreamReader reader(cut);
        EXPECT_FALSE(reader.valid()) << "header cut at " << len;
        TraceEvent event;
        EXPECT_FALSE(reader.next(event));
    }
}

TEST(StreamExporter, ReaderStopsCleanlyAtTruncatedEvent)
{
    // Writer killed mid-record: the reader must deliver every
    // complete event and stop at the partial tail without returning
    // a half-filled record.
    std::string full = wellFormedStream(3);
    size_t two_and_a_half =
        sizeof(TraceStreamHeader) + 2 * sizeof(TraceEvent)
        + sizeof(TraceEvent) / 2;
    std::stringstream cut(full.substr(0, two_and_a_half),
                          std::ios::in | std::ios::binary);

    TraceStreamReader reader(cut);
    ASSERT_TRUE(reader.valid());
    TraceEvent event;
    size_t delivered = 0;
    while (reader.next(event)) {
        EXPECT_EQ(event.tick, Tick(delivered));
        EXPECT_EQ(event.value, delivered);
        ++delivered;
    }
    EXPECT_EQ(delivered, 2u);
    EXPECT_FALSE(reader.next(event)); // stays at end, no crash
}

TEST(TimeSeriesExporter, OneRowPerActiveWindow)
{
    std::ostringstream os;
    TraceTopology topology;
    topology.numVaults = 2;
    TimeSeriesCsvExporter exporter(os, topology, 10);

    feed(exporter, 1, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    feed(exporter, 25, TraceComponent::Vault, 1,
         TraceEventType::DramWord, 0, 128);
    exporter.finish();

    std::istringstream rows(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(rows, line));
    EXPECT_EQ(line.substr(0, 12), "window_start");
    size_t data_rows = 0;
    while (std::getline(rows, line))
        ++data_rows;
    // Window [0,10) and window [20,30): the empty middle window is
    // skipped.
    EXPECT_EQ(data_rows, 2u);
}

/** Parse the window_start values of every CSV data row. */
std::vector<Tick>
windowStarts(const std::string &csv)
{
    std::istringstream rows(csv);
    std::string line;
    std::vector<Tick> starts;
    std::getline(rows, line); // header
    while (std::getline(rows, line)) {
        starts.push_back(
            Tick(std::strtoull(line.c_str(), nullptr, 10)));
    }
    return starts;
}

TEST(TimeSeriesExporter, WindowBoundaryAtLayerEnd)
{
    // A layer whose last event lands exactly on a window boundary:
    // tick 10 must open window [10,20), not extend [0,10), and the
    // final partial window must still be flushed by finish().
    std::ostringstream os;
    TraceTopology topology;
    TimeSeriesCsvExporter exporter(os, topology, 10);

    feed(exporter, 9, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    feed(exporter, 10, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    exporter.finish();

    std::vector<Tick> starts = windowStarts(os.str());
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], Tick(0));
    EXPECT_EQ(starts[1], Tick(10));
}

TEST(TimeSeriesExporter, QuiescentLaneWindowsAreSkippedNotZeroFilled)
{
    // A lane that finishes early goes quiet for many windows; the
    // exporter must emit no rows for the gap (the phase detector
    // reinstates it as a quiescent segment) and resume with a clean
    // accumulator, not values carried over from before the gap.
    std::ostringstream os;
    TraceTopology topology;
    TimeSeriesCsvExporter exporter(os, topology, 10);

    feed(exporter, 0, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    feed(exporter, 5, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    // 9 empty windows, then one late event.
    feed(exporter, 104, TraceComponent::Router, 0,
         TraceEventType::LinkFlit, 1, 0);
    exporter.finish();

    std::string csv = os.str();
    std::vector<Tick> starts = windowStarts(csv);
    ASSERT_EQ(starts.size(), 2u);
    EXPECT_EQ(starts[0], Tick(0));
    EXPECT_EQ(starts[1], Tick(100));

    // The resumed window counts only its own flit (0.1 flits/cycle),
    // not the two from before the gap.
    std::istringstream rows(csv);
    std::string line;
    std::getline(rows, line);
    std::getline(rows, line);
    std::getline(rows, line);
    EXPECT_EQ(line.substr(0, 8), "100,0.1,");
}

TEST(TimeSeriesExporter, EmitsWindowAveragePower)
{
    std::ostringstream os;
    TraceTopology topology;
    topology.numVaults = 1;
    TimeSeriesCsvExporter exporter(os, topology, 10);

    // One packed DRAM word of 128 bits in window [0,10).
    feed(exporter, 1, TraceComponent::Vault, 0,
         TraceEventType::DramWord, 0, 128);
    exporter.finish();

    std::istringstream rows(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(rows, header));
    ASSERT_TRUE(std::getline(rows, row));

    // Locate the avg_power_w column by name (robust to layout).
    auto split = [](const std::string &line) {
        std::vector<std::string> fields;
        std::istringstream ss(line);
        std::string f;
        while (std::getline(ss, f, ','))
            fields.push_back(f);
        return fields;
    };
    std::vector<std::string> names = split(header);
    std::vector<std::string> values = split(row);
    ASSERT_EQ(names.size(), values.size());
    auto it = std::find(names.begin(), names.end(), "avg_power_w");
    ASSERT_NE(it, names.end());
    double watts =
        std::strtod(values[size_t(it - names.begin())].c_str(),
                    nullptr);

    // 128 bits pay the DRAM + logic-die tolls plus one transaction;
    // averaged over the 10-tick window at the 5 GHz reference clock.
    EnergyPrices p;
    double expect_pj =
        128.0 * (p.dramPjPerBit + p.vaultLogicPjPerBit)
        + p.vaultXactPj;
    EXPECT_NEAR(watts, expect_pj * 1e-12 * referenceClockHz / 10.0,
                1e-6);
    EXPECT_GT(watts, 0.0);
}

TEST(ChromeExporter, EmitsPowerCounterTrack)
{
    std::ostringstream os;
    TraceTopology topology;
    topology.numPes = 4;
    ChromeTraceExporter exporter(os, topology, 16);

    // Energy-bearing activity in window [0,16), then an event in a
    // later window to flush it.
    feed(exporter, 2, TraceComponent::Pe, 0, TraceEventType::MacBusy,
         16, 16);
    feed(exporter, 40, TraceComponent::Pe, 0, TraceEventType::MacBusy,
         8, 8);
    exporter.finish();

    std::string json = os.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json.substr(0, 400);
    EXPECT_NE(json.find("power.W"), std::string::npos);
}

TEST(ChromeExporter, NoPowerTrackWithoutEnergyBearingEvents)
{
    std::ostringstream os;
    TraceTopology topology;
    ChromeTraceExporter exporter(os, topology, 16);
    // Queue-depth samples carry no energy: no power.W counter.
    feed(exporter, 1, TraceComponent::Vault, 0,
         TraceEventType::DramQueueDepth, 0, 3);
    feed(exporter, 40, TraceComponent::Vault, 0,
         TraceEventType::DramQueueDepth, 0, 1);
    exporter.finish();
    EXPECT_EQ(os.str().find("power.W"), std::string::npos);
}

TEST(ChromeExporter, EmitsPhaseAnnotationTrack)
{
    std::ostringstream os;
    TraceTopology topology;
    ChromeTraceExporter exporter(os, topology, 16);
    feed(exporter, 1, TraceComponent::Router, 0,
         TraceEventType::FlitSwitch, 0, 0);

    std::vector<PhaseSegment> segments;
    segments.push_back({0, 64, PhaseKind::Compute, 4});
    segments.push_back({64, 128, PhaseKind::DramBound, 4});
    segments.push_back({128, 128, PhaseKind::Quiescent, 0}); // empty
    exporter.emitPhases(segments);
    exporter.finish();

    std::string json = os.str();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("\"compute\""), std::string::npos);
    EXPECT_NE(json.find("\"dram-bound\""), std::string::npos);
    EXPECT_NE(json.find("\"windows\":4"), std::string::npos);
    // The empty segment is skipped.
    EXPECT_EQ(json.find("\"quiescent\""), std::string::npos);
}

/** One tiny conv layer on the real machine with tracing on. */
TEST(TraceIntegration, MachineEmitsLoadableTraceFiles)
{
    const std::string json_path = "test_trace_out.json";
    const std::string csv_path = "test_trace_out.csv";

    NetworkDesc net;
    net.name = "trace-test";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(conv.inMaps, conv.inHeight, conv.inWidth);
    Rng rng(8);
    input.randomize(rng);

    {
        NeurocubeConfig config;
        config.trace.enabled = true;
        config.trace.chromeJsonPath = json_path;
        config.trace.timeseriesCsvPath = csv_path;
        config.trace.windowTicks = 64;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        cube.setInput(input);
        cube.runForward();
        // The session flushes when the cube is destroyed.
    }

#if NEUROCUBE_TRACE_ENABLED
    std::ifstream json_in(json_path);
    ASSERT_TRUE(json_in.good());
    std::stringstream json_text;
    json_text << json_in.rdbuf();
    JsonChecker checker(json_text.str());
    EXPECT_TRUE(checker.parse());
    EXPECT_GT(checker.traceEvents(), 100u);
    // The machine's activity produced a power-over-time counter
    // track, and the session fed the detected phases back in as an
    // annotation track on teardown.
    EXPECT_NE(json_text.str().find("power.W"), std::string::npos);
    EXPECT_NE(json_text.str().find("\"phases\""), std::string::npos);

    std::ifstream csv_in(csv_path);
    ASSERT_TRUE(csv_in.good());
    std::string header;
    ASSERT_TRUE(std::getline(csv_in, header));
    EXPECT_NE(header.find("pe_util_pct"), std::string::npos);
    EXPECT_NE(header.find("avg_power_w"), std::string::npos);
    EXPECT_NE(header.find("vault15_bytes"), std::string::npos);
    size_t rows = 0;
    std::string line;
    while (std::getline(csv_in, line)) {
        ++rows;
        // Every row must have the same field count as the header.
        EXPECT_EQ(std::count(line.begin(), line.end(), ','),
                  std::count(header.begin(), header.end(), ','))
            << line;
    }
    EXPECT_GT(rows, 2u);
#endif

    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

#if NEUROCUBE_TRACE_ENABLED
/** One traced run of a tiny conv machine; returns {json, csv}. */
std::pair<std::string, std::string>
sampledRunExports(uint64_t sample_period, const char *tag)
{
    const std::string json_path =
        std::string(tag) + ".sampled.json";
    const std::string csv_path = std::string(tag) + ".sampled.csv";

    NetworkDesc net;
    net.name = "sample-test";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();
    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(conv.inMaps, conv.inHeight, conv.inWidth);
    Rng rng(8);
    input.randomize(rng);

    {
        NeurocubeConfig config;
        config.trace.enabled = true;
        config.trace.chromeJsonPath = json_path;
        config.trace.timeseriesCsvPath = csv_path;
        config.trace.windowTicks = 64;
        config.trace.samplePeriod = sample_period;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        cube.setInput(input);
        cube.runForward();
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::stringstream text;
        text << in.rdbuf();
        std::remove(path.c_str());
        return text.str();
    };
    return {slurp(json_path), slurp(csv_path)};
}

TEST(TraceIntegration, SampledExportsAreDeterministic)
{
    // Same workload + same sample period twice: the exports must be
    // byte-identical (sampling is a pure function of the tick, never
    // of wall clock or ring pressure).
    auto first = sampledRunExports(3, "test_trace_det_a");
    auto second = sampledRunExports(3, "test_trace_det_b");
    ASSERT_FALSE(first.first.empty());
    ASSERT_FALSE(first.second.empty());
    EXPECT_EQ(first.first, second.first);   // chrome JSON
    EXPECT_EQ(first.second, second.second); // timeseries CSV

    // And the sampled stream is a genuine subset: fewer trace events
    // than the full-fidelity run of the same workload.
    auto full = sampledRunExports(1, "test_trace_det_full");
    JsonChecker sampled_json(first.first);
    JsonChecker full_json(full.first);
    ASSERT_TRUE(sampled_json.parse());
    ASSERT_TRUE(full_json.parse());
    EXPECT_LT(sampled_json.traceEvents(), full_json.traceEvents());
}

/** The live stream end to end: machine -> consumer thread -> file. */
TEST(TraceIntegration, StreamPathProducesReadableBinaryStream)
{
    const std::string stream_path = "test_trace_stream.bin";

    NetworkDesc net;
    net.name = "stream-test";
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    net.layers.push_back(conv);
    net.validate();

    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(conv.inMaps, conv.inHeight, conv.inWidth);
    Rng rng(8);
    input.randomize(rng);

    {
        NeurocubeConfig config;
        config.trace.enabled = true;
        config.trace.streamPath = stream_path;
        Neurocube cube(config);
        cube.loadNetwork(net, data);
        cube.setInput(input);
        cube.runForward();
    }

    std::ifstream in(stream_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    TraceStreamReader reader(in);
    ASSERT_TRUE(reader.valid());
    EXPECT_EQ(reader.header().numPes, 16u);
    EXPECT_EQ(reader.header().numVaults, 16u);

    TraceEvent event;
    size_t events = 0;
    Tick last = 0;
    while (reader.next(event)) {
        EXPECT_GE(event.tick, last); // ring order is time order
        last = event.tick;
        ++events;
    }
    EXPECT_GT(events, 100u);

    std::remove(stream_path.c_str());
}
#endif

} // namespace
} // namespace neurocube
