/**
 * @file
 * Unit tests for the PNG: counters, LUT, and address generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "png/address_generator.hh"
#include "png/counters.hh"
#include "png/lut.hh"

namespace neurocube
{
namespace
{

TEST(NestedCounters, VisitsEveryTriple)
{
    NestedCounters fsm;
    fsm.configure({40, 3, 16});
    std::set<std::tuple<uint64_t, uint32_t, uint32_t>> seen;
    while (!fsm.done()) {
        seen.insert({fsm.neuron(), fsm.connection(), fsm.mac()});
        EXPECT_LT(fsm.currentNeuronIndex(), 40u);
        fsm.advance();
    }
    // 40 neurons: groups of 16, last group has 8 active MACs.
    // Total (neuron-group, conn, mac) visits = (16+16+8) * 3.
    EXPECT_EQ(seen.size(), size_t(40 * 3));
}

TEST(NestedCounters, MacInnermostConnectionMiddle)
{
    NestedCounters fsm;
    fsm.configure({16, 2, 16});
    EXPECT_EQ(fsm.mac(), 0u);
    fsm.advance();
    EXPECT_EQ(fsm.mac(), 1u);
    EXPECT_EQ(fsm.connection(), 0u);
    for (int i = 0; i < 15; ++i)
        fsm.advance();
    EXPECT_EQ(fsm.mac(), 0u);
    EXPECT_EQ(fsm.connection(), 1u);
}

TEST(NestedCounters, NeuronCounterStepsByMacCount)
{
    // The paper's example: the neuron counter increments by 16 since
    // 16 neuron states are computed simultaneously.
    NestedCounters fsm;
    fsm.configure({32, 1, 16});
    for (int i = 0; i < 16; ++i)
        fsm.advance();
    EXPECT_EQ(fsm.neuron(), 16u);
}

TEST(NestedCounters, SceneLabelingLayer1Example)
{
    // 73,476 neurons, 49 connections, 16 MACs (Section IV-C).
    NestedCounters fsm;
    fsm.configure({73476, 49, 16});
    uint64_t steps = 0;
    while (!fsm.done()) {
        fsm.advance();
        ++steps;
    }
    EXPECT_EQ(steps, 73476ull * 49ull);
}

TEST(Lut, IdentityIsExact)
{
    const Lut &lut = sharedLut(ActivationKind::Identity);
    for (int raw = -32768; raw <= 32767; raw += 257) {
        Fixed in = Fixed::fromRaw(int16_t(raw));
        EXPECT_EQ(lut.apply(in), in);
    }
}

TEST(Lut, ReluClampsNegatives)
{
    const Lut &lut = sharedLut(ActivationKind::ReLU);
    EXPECT_EQ(lut.apply(Fixed::fromDouble(-3.0)).raw(), 0);
    EXPECT_EQ(lut.apply(Fixed::fromDouble(3.0)),
              Fixed::fromDouble(3.0));
}

TEST(Lut, SigmoidMatchesQuantizedMath)
{
    const Lut &lut = sharedLut(ActivationKind::Sigmoid);
    for (double v : {-8.0, -1.0, 0.0, 1.0, 8.0}) {
        Fixed in = Fixed::fromDouble(v);
        Fixed expect =
            Fixed::fromDouble(1.0 / (1.0 + std::exp(-in.toDouble())));
        EXPECT_EQ(lut.apply(in), expect) << "at " << v;
    }
}

TEST(Lut, TanhSaturatesToUnit)
{
    const Lut &lut = sharedLut(ActivationKind::Tanh);
    EXPECT_NEAR(lut.apply(Fixed::fromDouble(20.0)).toDouble(), 1.0,
                1.0 / 256.0);
    EXPECT_NEAR(lut.apply(Fixed::fromDouble(-20.0)).toDouble(), -1.0,
                1.0 / 256.0);
}

/** Build a simple one-vault conv program over a small image. */
PngProgram
smallConvProgram()
{
    PngProgram prog;
    prog.enabled = true;
    prog.outWalk = {0, 0, 6, 6};
    prog.strideX = prog.strideY = 1;
    for (int dy = 0; dy < 3; ++dy) {
        for (int dx = 0; dx < 3; ++dx) {
            prog.conns.push_back({Conn::Source::Input, 0,
                                  int16_t(dx), int16_t(dy)});
        }
    }
    prog.input.region = {100, 64};
    prog.input.stored = {0, 0, 8, 8};
    prog.input.planes = 1;
    prog.output.region = {200, 36};
    prog.output.stored = {0, 0, 6, 6};
    prog.output.planes = 1;
    prog.weights = {300, 9};
    prog.outTiles = TileMap::grid({0, 0, 6, 6}, 1, 1);
    prog.homeTiles = prog.outTiles;
    prog.outMapWidth = 6;
    prog.expectedWriteBacks = 36;
    return prog;
}

TEST(AddressGenerator, GeneratesAllPairsOnce)
{
    AddressGenerator gen;
    gen.configure(smallConvProgram(), 16);
    std::map<std::tuple<uint32_t, uint32_t, uint32_t>, int> seen;
    GeneratedOp op;
    uint64_t states = 0, weights = 0;
    while (gen.next(op)) {
        if (op.kind == PacketKind::State)
            ++states;
        else
            ++weights;
        seen[{op.group, op.opId, op.mac}] += 1;
    }
    EXPECT_EQ(states, 36u * 9u);
    EXPECT_EQ(weights, 36u * 9u);
    EXPECT_EQ(gen.totalPairs(), 36u * 9u);
    // Each (group, op, mac) must appear exactly twice: one state,
    // one weight.
    for (const auto &[key, count] : seen)
        EXPECT_EQ(count, 2) << "group/op/mac duplicated or missing";
}

TEST(AddressGenerator, ConvAddressesFollowEq45)
{
    AddressGenerator gen;
    PngProgram prog = smallConvProgram();
    gen.configure(prog, 16);
    GeneratedOp op;
    while (gen.next(op)) {
        if (op.kind != PacketKind::State)
            continue;
        uint32_t x = op.neuron % 6;
        uint32_t y = op.neuron / 6;
        const Conn &c = prog.conns[op.opId];
        // Addr = (targ_y * W + targ_x) + base (Eq. 5, W = stored
        // width 8).
        Addr expect = 100 + (y + c.dy) * 8 + (x + c.dx);
        EXPECT_EQ(op.addr, expect);
    }
}

TEST(AddressGenerator, SharedWeightsIndexedByConnection)
{
    AddressGenerator gen;
    gen.configure(smallConvProgram(), 16);
    GeneratedOp op;
    while (gen.next(op)) {
        if (op.kind == PacketKind::Weight) {
            EXPECT_EQ(op.addr, 300 + op.opId);
        }
    }
}

TEST(AddressGenerator, StatesBeforeWeightsPerConnection)
{
    // For every (group, connection), all state operands are emitted
    // before any weight operand — the burst-aligned DRAM pattern
    // (states of a whole connection block stream first, then the
    // block's weights).
    AddressGenerator gen;
    gen.configure(smallConvProgram(), 16);
    GeneratedOp op;
    std::map<std::pair<uint32_t, uint32_t>, int> last_state;
    std::map<std::pair<uint32_t, uint32_t>, int> first_weight;
    int seq = 0;
    while (gen.next(op)) {
        auto key = std::make_pair(op.group, uint32_t(op.opId));
        if (op.kind == PacketKind::State) {
            last_state[key] = seq;
        } else {
            if (!first_weight.count(key))
                first_weight[key] = seq;
        }
        ++seq;
    }
    for (const auto &[key, w] : first_weight) {
        ASSERT_TRUE(last_state.count(key));
        EXPECT_GT(w, last_state[key])
            << "group " << key.first << " op " << key.second;
    }
}

TEST(AddressGenerator, ConnectionBlockingLengthensStreamRuns)
{
    // With a connection block of 4, at least 4 * 16 state operands
    // stream back-to-back before the first weight.
    AddressGenerator gen;
    gen.configure(smallConvProgram(), 16, 4);
    GeneratedOp op;
    unsigned run = 0;
    while (gen.next(op) && op.kind == PacketKind::State)
        ++run;
    EXPECT_GE(run, 4u * 16u);
}

TEST(AddressGenerator, OrderedPerDestinationGroup)
{
    // The PE's OP-counter sequencing needs: per destination, groups
    // non-decreasing; and within a (dst, group), each operand KIND's
    // op ids non-decreasing (states of a connection block stream
    // before the block's weights, so kinds interleave).
    AddressGenerator gen;
    gen.configure(smallConvProgram(), 16);
    GeneratedOp op;
    std::map<uint32_t, uint32_t> last_group; // dst -> group
    std::map<std::tuple<uint32_t, uint32_t, int>, uint32_t> last_op;
    while (gen.next(op)) {
        auto it = last_group.find(op.dst);
        if (it != last_group.end()) {
            EXPECT_GE(op.group, it->second)
                << "group regressed for dst " << op.dst;
        }
        last_group[op.dst] = op.group;
        auto key = std::make_tuple(op.dst, op.group,
                                   int(op.kind));
        auto jt = last_op.find(key);
        if (jt != last_op.end()) {
            EXPECT_GE(op.opId, jt->second)
                << "op id regressed for dst " << op.dst << " kind "
                << int(op.kind);
        }
        last_op[key] = op.opId;
    }
}

TEST(AddressGenerator, InputFilteringSplitsWorkExactly)
{
    // Two vaults each own half of the input; together they must
    // generate every (neuron, conn) exactly once.
    PngProgram base = smallConvProgram();
    base.filterByInput = true;
    std::map<std::pair<uint32_t, uint32_t>, int> coverage;
    for (int half = 0; half < 2; ++half) {
        PngProgram prog = base;
        prog.ownedInput = half == 0 ? Rect{0, 0, 8, 4}
                                    : Rect{0, 4, 8, 4};
        // Both walk the full output (reachable region = everything
        // for this small image).
        AddressGenerator gen;
        gen.configure(prog, 16);
        GeneratedOp op;
        while (gen.next(op)) {
            if (op.kind == PacketKind::State)
                coverage[{op.neuron, op.opId}] += 1;
        }
    }
    EXPECT_EQ(coverage.size(), size_t(36 * 9));
    for (const auto &[key, count] : coverage)
        EXPECT_EQ(count, 1);
}

TEST(AddressGenerator, StrideZeroFullyConnected)
{
    PngProgram prog;
    prog.enabled = true;
    prog.outWalk = {0, 0, 4, 1};
    prog.strideX = prog.strideY = 0;
    for (int i = 0; i < 10; ++i)
        prog.conns.push_back({Conn::Source::Input, 0, int16_t(i), 0});
    prog.input.region = {0, 10};
    prog.input.stored = {0, 0, 10, 1};
    prog.input.planes = 1;
    prog.output.region = {50, 4};
    prog.output.stored = {0, 0, 4, 1};
    prog.output.planes = 1;
    prog.weights = {100, 40};
    prog.weightNeuronStride = 10;
    prog.outTiles = TileMap::grid({0, 0, 4, 1}, 1, 1);
    prog.homeTiles = prog.outTiles;
    prog.outMapWidth = 4;

    AddressGenerator gen;
    gen.configure(prog, 16);
    GeneratedOp op;
    while (gen.next(op)) {
        if (op.kind == PacketKind::State) {
            EXPECT_EQ(op.addr, Addr(op.opId)); // input[conn]
        } else {
            // W[o * 10 + c] with walk index = o.
            EXPECT_EQ(op.addr, 100 + op.neuron * 10 + op.opId);
        }
    }
    EXPECT_EQ(gen.totalPairs(), 40u);
}

TEST(AddressGenerator, StreamWeightsOffHalvesTraffic)
{
    PngProgram prog = smallConvProgram();
    prog.streamWeights = false;
    AddressGenerator gen;
    gen.configure(prog, 16);
    GeneratedOp op;
    uint64_t total = 0;
    while (gen.next(op)) {
        EXPECT_EQ(op.kind, PacketKind::State);
        ++total;
    }
    EXPECT_EQ(total, 36u * 9u);
    EXPECT_EQ(gen.totalPairs(), 36u * 9u);
}

TEST(AddressGenerator, PartialConnectionReadsOutputPlane)
{
    PngProgram prog = smallConvProgram();
    prog.conns.push_back({Conn::Source::Partial, 0, 0, 0});
    prog.onesAddr = 999;
    AddressGenerator gen;
    gen.configure(prog, 16);
    GeneratedOp op;
    bool saw_partial_state = false, saw_partial_weight = false;
    while (gen.next(op)) {
        if (op.opId != 9)
            continue;
        if (op.kind == PacketKind::State) {
            uint32_t x = op.neuron % 6, y = op.neuron / 6;
            EXPECT_EQ(op.addr, 200 + y * 6 + x);
            saw_partial_state = true;
        } else {
            EXPECT_EQ(op.addr, 999u);
            EXPECT_TRUE(op.isConstantOne);
            saw_partial_weight = true;
        }
    }
    EXPECT_TRUE(saw_partial_state);
    EXPECT_TRUE(saw_partial_weight);
}

} // namespace
} // namespace neurocube
