/**
 * @file
 * Run-manifest and metrics-export tests: the config fingerprint's
 * stability and sensitivity, the manifest identity block, and the
 * two flat export formats (structured JSON, Prometheus textfile) for
 * both forward runs and serving runs.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/manifest.hh"
#include "core/neurocube.hh"
#include "serving/server.hh"
#include "serving/slo.hh"

namespace neurocube
{
namespace
{

/** One tiny traced forward run (metrics + energy accounting). */
RunResult
tinyRun()
{
    NetworkDesc net;
    net.name = "manifest-net";
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 32;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 8;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();

    NeurocubeConfig config;
#if NEUROCUBE_TRACE_ENABLED
    config.trace.enabled = true;
#endif
    NetworkData data = NetworkData::randomized(net, 3);
    Tensor input(1, 1, 32);
    Rng rng(4);
    input.randomize(rng);
    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();
    run.wallMs = 12.5;
    return run;
}

TEST(Manifest, EngineNamesAreStable)
{
    EXPECT_STREQ(simEngineName(SimEngine::Legacy), "legacy");
    EXPECT_STREQ(simEngineName(SimEngine::Event), "event");
    EXPECT_STREQ(simEngineName(SimEngine::ThreadedLanes),
                 "threaded_lanes");
}

TEST(Manifest, FingerprintIsStableAndSensitive)
{
    NeurocubeConfig a, b;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));

    // Architecture-defining fields move the hash...
    b.pe.numMacs = 32;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    b = a;
    b.dram = DramParams::ddr3();
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    b = a;
    b.noc.bufferDepth = 4;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    b = a;
    b.batch.lanes = 4;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));

    // ...observational knobs do not: engine choice and tracing never
    // change simulated results, so they stay outside the fingerprint.
    b = a;
    b.engine = SimEngine::Legacy;
    b.trace.enabled = true;
    b.trace.samplePeriod = 64;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
}

TEST(Manifest, ExplicitDefaultChannelPlacementHashesLikeImplicit)
{
    NeurocubeConfig a;
    NeurocubeConfig b;
    b.memoryNodes = a.resolvedMemoryNodes();
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
    b.memoryNodes[0] = (b.memoryNodes[0] + 1) % b.numPes;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
}

TEST(Manifest, BuildRunManifestFillsTheIdentityBlock)
{
    NeurocubeConfig config;
    RunManifest m =
        buildRunManifest(config, SimEngine::Event, "unit", true);
    EXPECT_EQ(m.name, "unit");
    EXPECT_EQ(m.engine, "event");
    EXPECT_TRUE(m.quick);
    EXPECT_FALSE(m.gitDescribe.empty());
    ASSERT_EQ(m.configHash.size(), 16u);
    for (char c : m.configHash)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)))
            << m.configHash;
}

TEST(Manifest, RunManifestJsonCarriesTheStructuredFields)
{
    RunResult run = tinyRun();
    NeurocubeConfig config;
    RunManifest m =
        buildRunManifest(config, SimEngine::Event, "json-test");
    std::string json = runManifestJson(m, run);

    EXPECT_NE(json.find("\"name\":\"json-test\""), std::string::npos);
    EXPECT_NE(json.find("\"engine\":\"event\""), std::string::npos);
    EXPECT_NE(json.find("\"config_hash\":\"" + m.configHash + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"git_describe\":"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\":"), std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\":12.5"), std::string::npos);
#if NEUROCUBE_TRACE_ENABLED
    // The traced run carries stall and energy accounting, so both
    // breakdowns are structured objects, not null.
    EXPECT_NE(json.find("\"stalls\":{\"counted_ticks\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"energy\":{\"total_j\":"),
              std::string::npos);
    EXPECT_EQ(json.find("\"stalls\":null"), std::string::npos);
#endif

    // An accounting-free run degrades to explicit nulls.
    RunResult empty;
    std::string bare = runManifestJson(m, empty);
    EXPECT_NE(bare.find("\"stalls\":null"), std::string::npos);
    EXPECT_NE(bare.find("\"energy\":null"), std::string::npos);
}

TEST(Manifest, MetricsTextfileIsPrometheusShaped)
{
    RunResult run = tinyRun();
    NeurocubeConfig config;
    RunManifest m =
        buildRunManifest(config, SimEngine::Event, "prom-test");
    std::string prom = runMetricsTextfile(m, run);

    EXPECT_NE(prom.find("# TYPE neurocube_run_info gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("neurocube_run_info{run=\"prom-test\""),
              std::string::npos);
    EXPECT_NE(prom.find("neurocube_total_cycles{run=\"prom-test\"} "),
              std::string::npos);
    EXPECT_NE(prom.find("neurocube_wall_ms{run=\"prom-test\"} "),
              std::string::npos);
#if NEUROCUBE_TRACE_ENABLED
    EXPECT_NE(
        prom.find(
            "neurocube_stall_ticks{run=\"prom-test\",class=\"busy\"}"),
        std::string::npos);
    EXPECT_NE(prom.find("neurocube_energy_joules{run=\"prom-test\","
                        "component=\"mac\"}"),
              std::string::npos);
#endif
    // Textfile-collector shape: every non-comment line is
    // "name{labels} value" with no leading whitespace.
    std::istringstream lines(prom);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        EXPECT_EQ(line.rfind("neurocube_", 0), 0u) << line;
        EXPECT_NE(line.find("} "), std::string::npos) << line;
    }
}

TEST(Manifest, ServingExportsCarryTheIdentityAndReport)
{
    NetworkDesc net;
    net.name = "serve-manifest-net";
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 32;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 8;
    fc.activation = ActivationKind::Sigmoid;
    net.layers.push_back(fc);
    net.validate();
    NetworkData data = NetworkData::randomized(net, 5);
    Tensor input(1, 1, 32);
    Rng rng(6);
    input.randomize(rng);

    NeurocubeConfig machine;
    Neurocube cube(machine);
    cube.loadNetwork(net, data);
    ArrivalSchedule arrivals = poissonArrivals(8, 1500.0, 13);
    ServingConfig serving;
    ServingSimulator sim(cube, serving);
    ServingReport report = buildServingReport(sim.run(arrivals, input));
    RunManifest m = buildRunManifest(machine, cube.activeEngine(),
                                     "serve-test");

    std::string json = servingManifestJson(m, report, 3.5);
    EXPECT_NE(json.find("\"name\":\"serve-test\""), std::string::npos);
    EXPECT_NE(json.find("\"config_hash\":\"" + m.configHash + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"wall_ms\":3.5"), std::string::npos);
    EXPECT_NE(json.find("\"report\":{"), std::string::npos);
    EXPECT_NE(json.find("\"total_cycles\": "), std::string::npos);

    std::string prom = servingMetricsTextfile(m, report, 3.5);
    EXPECT_NE(prom.find("neurocube_run_info{run=\"serve-test\""),
              std::string::npos);
    EXPECT_NE(prom.find("neurocube_serve_served{run=\"serve-test\"} "),
              std::string::npos);
    EXPECT_NE(
        prom.find("neurocube_serve_p99_ticks{run=\"serve-test\"} "),
        std::string::npos);
}

} // namespace
} // namespace neurocube
