/**
 * @file
 * Golden cycle-count regression for the fig12_inference workload.
 *
 * The simulator is deterministic, so the per-layer cycle counts of
 * the scene-labeling network (on a reduced 64x48 input, same seeds as
 * bench/bench_common.hh) are locked in tests/golden/fig12_cycles.txt.
 * Any timing-model change shows up here as an exact diff instead of a
 * silent drift in EXPERIMENTS.md numbers.
 *
 * To regenerate after an intentional timing change:
 *   NEUROCUBE_UPDATE_GOLDEN=1 ./tests/test_golden_cycles
 * and commit the rewritten golden file with the change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/neurocube.hh"
#include "nn/network.hh"

namespace neurocube
{
namespace
{

constexpr char kGoldenPath[] =
    NEUROCUBE_TEST_DATA_DIR "/golden/fig12_cycles.txt";

/** Per-layer cycles of the reduced fig12 workload (seed 1). */
std::vector<std::pair<std::string, Tick>>
measuredCycles(const NeurocubeConfig &config = NeurocubeConfig{})
{
    NetworkDesc net = sceneLabelingNetwork(64, 48);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(2);
    input.randomize(rng);

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    std::vector<std::pair<std::string, Tick>> rows;
    for (const LayerResult &l : run.layers)
        rows.emplace_back(l.name, l.cycles);
    return rows;
}

std::vector<std::pair<std::string, Tick>>
loadGolden()
{
    std::ifstream in(kGoldenPath);
    EXPECT_TRUE(in.good()) << "missing golden file " << kGoldenPath;
    std::vector<std::pair<std::string, Tick>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string name;
        unsigned long long cycles = 0;
        fields >> name >> cycles;
        rows.emplace_back(name, Tick(cycles));
    }
    return rows;
}

TEST(GoldenCycles, Fig12LayerCyclesAreLocked)
{
    auto measured = measuredCycles();

    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << "# Per-layer cycle counts of fig12_inference's "
               "scene-labeling network\n"
            << "# (64x48 input, seeds 1/2, default NeurocubeConfig). "
               "Regenerate with\n"
            << "# NEUROCUBE_UPDATE_GOLDEN=1 ./tests/"
               "test_golden_cycles\n";
        for (const auto &[name, cycles] : measured)
            out << name << " " << cycles << "\n";
        GTEST_SKIP() << "golden file regenerated";
    }

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    ASSERT_EQ(golden.size(), 7u) << "fig12 network has 7 layers";
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << " cycle count drifted; if the timing change is "
               "intentional, regenerate with NEUROCUBE_UPDATE_GOLDEN=1";
    }
}

/**
 * Stall-attribution metrics are observational: a metrics-enabled run
 * must reproduce the golden per-layer cycle counts exactly. Catches
 * any NC_METRIC_CYCLE classification that accidentally perturbs
 * component behaviour.
 */
TEST(GoldenCycles, MetricsDoNotChangeCycleCounts)
{
    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "regeneration run";

    NeurocubeConfig with_metrics;
    with_metrics.trace.enabled = true;
    with_metrics.trace.metrics = true;
    auto measured = measuredCycles(with_metrics);

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << ": enabling metrics changed the cycle count; the "
               "accounting must stay observational";
    }
}

/**
 * Activity energy accounting is observational too: an energy-enabled
 * run must reproduce the golden per-layer cycle counts exactly.
 * Catches any NC_ENERGY_EVENT site that accidentally perturbs
 * component behaviour (e.g. by moving work across an early return).
 */
TEST(GoldenCycles, EnergyDoesNotChangeCycleCounts)
{
    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "regeneration run";

    NeurocubeConfig with_energy;
    with_energy.trace.enabled = true;
    with_energy.trace.metrics = false;
    with_energy.trace.energy = true;
    auto measured = measuredCycles(with_energy);

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << ": enabling energy accounting changed the cycle "
               "count; the accounting must stay observational";
    }
}

} // namespace
} // namespace neurocube
