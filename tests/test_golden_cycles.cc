/**
 * @file
 * Golden cycle-count regressions for the deterministic workloads.
 *
 * The simulator is deterministic, so per-pass cycle counts are
 * locked in committed golden files: the fig12 scene-labeling forward
 * pass (reduced 64x48 input, same seeds as bench/bench_common.hh) in
 * tests/golden/fig12_cycles.txt, a recurrent LSTM sequence in
 * tests/golden/recurrent_cycles.txt, and a full training iteration
 * (forward + delta + weight-gradient passes) in
 * tests/golden/training_cycles.txt. Any timing-model change shows up
 * here as an exact diff instead of a silent drift in EXPERIMENTS.md
 * numbers.
 *
 * To regenerate after an intentional timing change:
 *   NEUROCUBE_UPDATE_GOLDEN=1 ./tests/test_golden_cycles
 * and commit the rewritten golden files with the change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/neurocube.hh"
#include "core/recurrent.hh"
#include "core/training.hh"
#include "nn/network.hh"

namespace neurocube
{
namespace
{

constexpr char kGoldenPath[] =
    NEUROCUBE_TEST_DATA_DIR "/golden/fig12_cycles.txt";
constexpr char kRecurrentGoldenPath[] =
    NEUROCUBE_TEST_DATA_DIR "/golden/recurrent_cycles.txt";
constexpr char kTrainingGoldenPath[] =
    NEUROCUBE_TEST_DATA_DIR "/golden/training_cycles.txt";

/** Per-layer cycles of the reduced fig12 workload (seed 1). */
std::vector<std::pair<std::string, Tick>>
measuredCycles(const NeurocubeConfig &config = NeurocubeConfig{})
{
    NetworkDesc net = sceneLabelingNetwork(64, 48);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(2);
    input.randomize(rng);

    Neurocube cube(config);
    cube.loadNetwork(net, data);
    cube.setInput(input);
    RunResult run = cube.runForward();

    std::vector<std::pair<std::string, Tick>> rows;
    for (const LayerResult &l : run.layers)
        rows.emplace_back(l.name, l.cycles);
    return rows;
}

std::vector<std::pair<std::string, Tick>>
loadGoldenFile(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::vector<std::pair<std::string, Tick>> rows;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string name;
        unsigned long long cycles = 0;
        fields >> name >> cycles;
        rows.emplace_back(name, Tick(cycles));
    }
    return rows;
}

std::vector<std::pair<std::string, Tick>>
loadGolden()
{
    return loadGoldenFile(kGoldenPath);
}

/**
 * Compare measured per-pass cycles against a golden file, or rewrite
 * it when NEUROCUBE_UPDATE_GOLDEN is set (the caller then skips).
 * @return true when the golden file was regenerated
 */
bool
checkGolden(const char *path, const char *header,
            const std::vector<std::pair<std::string, Tick>> &measured)
{
    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        EXPECT_TRUE(out.good()) << "cannot write " << path;
        out << header;
        for (const auto &[name, cycles] : measured)
            out << name << " " << cycles << "\n";
        return true;
    }
    auto golden = loadGoldenFile(path);
    EXPECT_EQ(golden.size(), measured.size()) << path;
    for (size_t i = 0; i < golden.size() && i < measured.size();
         ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first)
            << path << " pass " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << path << " pass " << golden[i].first
            << " cycle count drifted; if the timing change is "
               "intentional, regenerate with NEUROCUBE_UPDATE_GOLDEN=1";
    }
    return false;
}

TEST(GoldenCycles, Fig12LayerCyclesAreLocked)
{
    auto measured = measuredCycles();

    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(kGoldenPath);
        ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
        out << "# Per-layer cycle counts of fig12_inference's "
               "scene-labeling network\n"
            << "# (64x48 input, seeds 1/2, default NeurocubeConfig). "
               "Regenerate with\n"
            << "# NEUROCUBE_UPDATE_GOLDEN=1 ./tests/"
               "test_golden_cycles\n";
        for (const auto &[name, cycles] : measured)
            out << name << " " << cycles << "\n";
        GTEST_SKIP() << "golden file regenerated";
    }

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    ASSERT_EQ(golden.size(), 7u) << "fig12 network has 7 layers";
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << " cycle count drifted; if the timing change is "
               "intentional, regenerate with NEUROCUBE_UPDATE_GOLDEN=1";
    }
}

/**
 * Stall-attribution metrics are observational: a metrics-enabled run
 * must reproduce the golden per-layer cycle counts exactly. Catches
 * any NC_METRIC_CYCLE classification that accidentally perturbs
 * component behaviour.
 */
TEST(GoldenCycles, MetricsDoNotChangeCycleCounts)
{
    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "regeneration run";

    NeurocubeConfig with_metrics;
    with_metrics.trace.enabled = true;
    with_metrics.trace.metrics = true;
    auto measured = measuredCycles(with_metrics);

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << ": enabling metrics changed the cycle count; the "
               "accounting must stay observational";
    }
}

/**
 * Activity energy accounting is observational too: an energy-enabled
 * run must reproduce the golden per-layer cycle counts exactly.
 * Catches any NC_ENERGY_EVENT site that accidentally perturbs
 * component behaviour (e.g. by moving work across an early return).
 */
TEST(GoldenCycles, EnergyDoesNotChangeCycleCounts)
{
    if (std::getenv("NEUROCUBE_UPDATE_GOLDEN") != nullptr)
        GTEST_SKIP() << "regeneration run";

    NeurocubeConfig with_energy;
    with_energy.trace.enabled = true;
    with_energy.trace.metrics = false;
    with_energy.trace.energy = true;
    auto measured = measuredCycles(with_energy);

    auto golden = loadGolden();
    ASSERT_EQ(golden.size(), measured.size());
    for (size_t i = 0; i < golden.size(); ++i) {
        EXPECT_EQ(measured[i].first, golden[i].first) << "layer " << i;
        EXPECT_EQ(measured[i].second, golden[i].second)
            << "layer " << golden[i].first
            << ": enabling energy accounting changed the cycle "
               "count; the accounting must stay observational";
    }
}

/**
 * Golden per-pass cycles of a recurrent workload: an LSTM sequence
 * exercises per-pass LUT swaps, per-neuron-weight gate products and
 * host-moved state vectors on top of the plain pass machinery.
 */
TEST(GoldenCycles, RecurrentLstmCyclesAreLocked)
{
    LstmDesc desc;
    desc.inputSize = 12;
    desc.hiddenSize = 16;
    desc.timeSteps = 3;
    LstmWeights weights = LstmWeights::randomized(desc, 75);
    Rng rng(76);
    std::vector<Tensor> inputs;
    for (unsigned t = 0; t < desc.timeSteps; ++t) {
        Tensor x(1, 1, desc.inputSize);
        x.randomize(rng, -1.0, 1.0);
        inputs.push_back(x);
    }

    Neurocube cube((NeurocubeConfig()));
    RunResult run = runLstm(cube, desc, weights, inputs);
    std::vector<std::pair<std::string, Tick>> rows;
    for (const LayerResult &l : run.layers)
        rows.emplace_back(l.name, l.cycles);
    ASSERT_EQ(rows.size(), 7u * desc.timeSteps)
        << "seven passes per LSTM step";

    if (checkGolden(kRecurrentGoldenPath,
                    "# Per-pass cycle counts of the golden LSTM "
                    "sequence (12->16, 3 steps,\n"
                    "# seeds 75/76, default NeurocubeConfig). "
                    "Regenerate with\n"
                    "# NEUROCUBE_UPDATE_GOLDEN=1 "
                    "./tests/test_golden_cycles\n",
                    rows))
        GTEST_SKIP() << "golden file regenerated";
}

/**
 * Golden per-pass cycles of a full training iteration (forward +
 * backward-delta + weight-gradient passes, Fig. 13's workload model
 * on a reduced input).
 */
TEST(GoldenCycles, TrainingIterationCyclesAreLocked)
{
    NetworkDesc net = sceneLabelingNetwork(48, 48);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(net.inputMaps(), net.inputHeight(),
                 net.inputWidth());
    Rng rng(2);
    input.randomize(rng);

    TrainingOptions opts;
    opts.includeWeightGradient = true;
    Neurocube cube((NeurocubeConfig()));
    RunResult run = runTrainingIteration(cube, net, data, input, opts);
    std::vector<std::pair<std::string, Tick>> rows;
    for (const LayerResult &l : run.layers)
        rows.emplace_back(l.name, l.cycles);
    ASSERT_GT(rows.size(), net.layers.size())
        << "training adds backward passes";

    if (checkGolden(kTrainingGoldenPath,
                    "# Per-pass cycle counts of the golden training "
                    "iteration\n"
                    "# (scene-labeling 48x48, full backprop, seeds "
                    "1/2, default config).\n"
                    "# Regenerate with NEUROCUBE_UPDATE_GOLDEN=1 "
                    "./tests/test_golden_cycles\n",
                    rows))
        GTEST_SKIP() << "golden file regenerated";
}

} // namespace
} // namespace neurocube
