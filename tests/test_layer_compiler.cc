/**
 * @file
 * Unit tests of the layer program compiler: memory layout, program
 * register contents, host gather, and the plane-loop collapse.
 */

#include <gtest/gtest.h>

#include "core/layer_compiler.hh"
#include "core/neurocube.hh"

namespace neurocube
{
namespace
{

class CompilerTest : public ::testing::Test
{
  protected:
    CompilerTest() : compiler_(config_)
    {
        for (unsigned ch = 0; ch < 16; ++ch) {
            storesOwned_.push_back(
                std::make_unique<BackingStore>());
            stores_.push_back(storesOwned_.back().get());
        }
    }

    CompiledLayer
    compile(const LayerDesc &layer, const std::vector<Fixed> &w,
            const Tensor &input)
    {
        return compiler_.compile(layer, w, input, stores_);
    }

    NeurocubeConfig config_;
    LayerCompiler compiler_;
    std::vector<std::unique_ptr<BackingStore>> storesOwned_;
    std::vector<BackingStore *> stores_;
};

LayerDesc
smallConv()
{
    LayerDesc conv;
    conv.type = LayerType::Conv2D;
    conv.name = "conv";
    conv.inWidth = 20;
    conv.inHeight = 16;
    conv.inMaps = 2;
    conv.outMaps = 4;
    conv.kernel = 3;
    conv.channelwise = true;
    conv.activation = ActivationKind::Tanh;
    return conv;
}

TEST_F(CompilerTest, ConvCollapsesToOneProgram)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 1);
    Tensor input(2, 16, 20);
    CompiledLayer compiled =
        compile(conv, data.weights[0], input);

    // One pass whose program iterates all four output maps.
    ASSERT_EQ(compiled.passes().size(), 1u);
    const PngProgram &prog = compiled.passes()[0].programs[0];
    EXPECT_EQ(prog.outPlanes, 4u);
    EXPECT_EQ(prog.planeInMapModulo, 2u);
    EXPECT_EQ(prog.weightPlaneStride, 9u);
    EXPECT_EQ(prog.conns.size(), 9u);
    EXPECT_EQ(prog.outPlaneSize, uint32_t(18 * 14));
    EXPECT_EQ(prog.activation, ActivationKind::Tanh);
    // PE sees all planes' neurons.
    const PePassConfig &pc = compiled.passes()[0].peConfigs[0];
    EXPECT_EQ(pc.planes, 4u);
    EXPECT_EQ(pc.numNeurons % 4u, 0u);
}

TEST_F(CompilerTest, InputWrittenIntoStoredRect)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 2);
    Tensor input(2, 16, 20);
    Rng rng(3);
    input.randomize(rng);
    CompiledLayer compiled =
        compile(conv, data.weights[0], input);

    for (unsigned ch = 0; ch < 16; ++ch) {
        const PngProgram &prog = compiled.passes()[0].programs[ch];
        const Rect &stored = prog.input.stored;
        for (unsigned m = 0; m < 2; ++m) {
            for (int32_t y = stored.y0; y < stored.y0 + stored.h;
                 ++y) {
                for (int32_t x = stored.x0;
                     x < stored.x0 + stored.w; ++x) {
                    EXPECT_EQ(stores_[ch]->read(
                                  prog.input.addrOf(m, x, y)),
                              input.at(m, unsigned(y), unsigned(x)));
                }
            }
        }
    }
}

TEST_F(CompilerTest, SharedKernelsDuplicatedInEveryVault)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 4);
    Tensor input(2, 16, 20);
    CompiledLayer compiled =
        compile(conv, data.weights[0], input);

    for (unsigned ch = 0; ch < 16; ++ch) {
        const PngProgram &prog = compiled.passes()[0].programs[ch];
        for (size_t i = 0; i < data.weights[0].size(); ++i) {
            EXPECT_EQ(stores_[ch]->read(prog.weights.base + i),
                      data.weights[0][i])
                << "vault " << ch << " weight " << i;
        }
    }
}

TEST_F(CompilerTest, GatherRoundTripsOutputStores)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 5);
    Tensor input(2, 16, 20);
    CompiledLayer compiled =
        compile(conv, data.weights[0], input);

    // Write a recognizable pattern into every vault's output region
    // and gather it back.
    for (unsigned ch = 0; ch < 16; ++ch) {
        const PlaneStorage &out = compiled.outputStorage()[ch];
        for (unsigned p = 0; p < out.planes; ++p) {
            const Rect &tile = out.stored;
            for (int32_t y = tile.y0; y < tile.y0 + tile.h; ++y) {
                for (int32_t x = tile.x0; x < tile.x0 + tile.w;
                     ++x) {
                    stores_[ch]->write(
                        out.addrOf(p, x, y),
                        Fixed::fromRaw(int16_t(p * 1000 + y * 20
                                               + x)));
                }
            }
        }
    }
    Tensor gathered = compiler_.gather(compiled, stores_);
    ASSERT_EQ(gathered.maps(), 4u);
    for (unsigned p = 0; p < 4; ++p) {
        for (unsigned y = 0; y < gathered.height(); ++y) {
            for (unsigned x = 0; x < gathered.width(); ++x) {
                EXPECT_EQ(gathered.at(p, y, x).raw(),
                          int16_t(p * 1000 + y * 20 + x));
            }
        }
    }
}

TEST_F(CompilerTest, FcWeightsInterleavedGroupBlocked)
{
    LayerDesc fc;
    fc.type = LayerType::FullyConnected;
    fc.name = "fc";
    fc.inWidth = 8;
    fc.inHeight = 1;
    fc.inMaps = 1;
    fc.outMaps = 32;

    NetworkDesc net;
    net.layers.push_back(fc);
    NetworkData data = NetworkData::randomized(net, 6);
    Tensor input(1, 1, 8);
    CompiledLayer compiled = compile(fc, data.weights[0], input);

    // Vault ch owns output slice [2ch, 2ch+2); its weights are
    // stored MAC-minor: base + (walk/16)*8*16 + c*16 + walk%16.
    for (unsigned ch = 0; ch < 16; ++ch) {
        const PngProgram &prog = compiled.passes()[0].programs[ch];
        EXPECT_TRUE(prog.weightInterleaved);
        EXPECT_EQ(prog.weightNeuronStride, 8u);
        Rect tile = compiled.mapping().outTiles.tile(ch);
        uint64_t walk = 0;
        for (int32_t o = tile.x0; o < tile.x0 + tile.w;
             ++o, ++walk) {
            for (uint64_t c = 0; c < 8; ++c) {
                Addr addr = prog.weights.base
                    + (walk / 16) * 8 * 16 + c * 16 + walk % 16;
                EXPECT_EQ(stores_[ch]->read(addr),
                          data.weights[0][uint64_t(o) * 8 + c]);
            }
        }
    }
}

TEST_F(CompilerTest, PixelMajorLayoutForPerPixelClassifier)
{
    LayerDesc fc1;
    fc1.type = LayerType::Conv2D;
    fc1.name = "fc1";
    fc1.inWidth = 10;
    fc1.inHeight = 6;
    fc1.inMaps = 8;
    fc1.outMaps = 2;
    fc1.kernel = 1;
    fc1.channelwise = false;

    NetworkDesc net;
    net.layers.push_back(fc1);
    NetworkData data = NetworkData::randomized(net, 7);
    Tensor input(8, 6, 10);
    Rng rng(8);
    input.randomize(rng);
    CompiledLayer compiled = compile(fc1, data.weights[0], input);

    const PngProgram &prog = compiled.passes()[0].programs[0];
    EXPECT_TRUE(prog.input.pixelMajor);
    // Consecutive maps of one pixel are adjacent in the vault.
    const Rect &stored = prog.input.stored;
    Addr a0 = prog.input.addrOf(0, stored.x0, stored.y0);
    Addr a1 = prog.input.addrOf(1, stored.x0, stored.y0);
    EXPECT_EQ(a1, a0 + 1);
}

TEST_F(CompilerTest, OnesElementBackstopsPartialReads)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 9);
    Tensor input(2, 16, 20);
    CompiledLayer compiled =
        compile(conv, data.weights[0], input);
    for (unsigned ch = 0; ch < 16; ++ch) {
        const PngProgram &prog = compiled.passes()[0].programs[ch];
        EXPECT_EQ(stores_[ch]->read(prog.onesAddr),
                  Fixed::fromDouble(1.0));
    }
}

TEST_F(CompilerTest, PlanCacheHitsOnRepeatAndBindsIdentically)
{
    LayerDesc conv = smallConv();
    NetworkDesc net;
    net.layers.push_back(conv);
    NetworkData data = NetworkData::randomized(net, 11);
    Tensor input(2, 16, 20);
    Rng rng(12);
    input.randomize(rng);

    CompiledLayer a = compile(conv, data.weights[0], input);
    EXPECT_EQ(compiler_.planCacheMisses(), 1u);
    EXPECT_EQ(compiler_.planCacheHits(), 0u);

    // Snapshot every store over the bound address range (the output
    // region is allocated last, so its end is the layout top).
    auto snapshot = [&]() {
        std::vector<std::vector<Fixed>> bytes(16);
        for (unsigned ch = 0; ch < 16; ++ch) {
            const Region &out = a.outputStorage()[ch].region;
            for (Addr addr = 0; addr < out.base + out.elements;
                 ++addr) {
                bytes[ch].push_back(stores_[ch]->read(addr));
            }
        }
        return bytes;
    };
    std::vector<std::vector<Fixed>> cold = snapshot();

    // Second compile is served from the cache (same plan object)
    // and binds the stores to the exact same contents.
    CompiledLayer b = compile(conv, data.weights[0], input);
    EXPECT_EQ(compiler_.planCacheMisses(), 1u);
    EXPECT_EQ(compiler_.planCacheHits(), 1u);
    EXPECT_EQ(a.plan.get(), b.plan.get());
    EXPECT_TRUE(snapshot() == cold);

    // A different layer shape is a different plan.
    LayerDesc other = conv;
    other.name = "conv2";
    other.outMaps = 2;
    NetworkDesc other_net;
    other_net.layers.push_back(other);
    NetworkData other_data = NetworkData::randomized(other_net, 13);
    compile(other, other_data.weights[0], input);
    EXPECT_EQ(compiler_.planCacheMisses(), 2u);

    // A cache-disabled compiler builds fresh plans every time but
    // binds bit-identical store contents.
    NeurocubeConfig no_cache = config_;
    no_cache.planCache = false;
    LayerCompiler cold_compiler(no_cache);
    cold_compiler.compile(conv, data.weights[0], input, stores_);
    cold_compiler.compile(conv, data.weights[0], input, stores_);
    EXPECT_EQ(cold_compiler.planCacheHits(), 0u);
    EXPECT_EQ(cold_compiler.planCacheMisses(), 2u);
    EXPECT_TRUE(snapshot() == cold);
}

TEST_F(CompilerTest, SplitModeStillEmitsPerPassPrograms)
{
    NeurocubeConfig config;
    config.splitFullConvPasses = true;
    LayerCompiler compiler(config);

    LayerDesc fc1;
    fc1.type = LayerType::Conv2D;
    fc1.name = "fc1";
    fc1.inWidth = 6;
    fc1.inHeight = 4;
    fc1.inMaps = 3;
    fc1.outMaps = 2;
    fc1.kernel = 1;
    fc1.channelwise = false;

    NetworkDesc net;
    net.layers.push_back(fc1);
    NetworkData data = NetworkData::randomized(net, 10);
    Tensor input(3, 4, 6);
    CompiledLayer compiled =
        compiler.compile(fc1, data.weights[0], input, stores_);
    EXPECT_EQ(compiled.passes().size(), 6u); // 2 out x 3 in maps
    // Accumulating passes carry the partial-sum connection.
    EXPECT_EQ(compiled.passes()[1].programs[0].conns.size(), 2u);
    EXPECT_EQ(compiled.passes()[1].programs[0].conns.back().source,
              Conn::Source::Partial);
    // Only the last pass of each output map applies the activation.
    EXPECT_EQ(compiled.passes()[0].programs[0].outPlanes, 1u);
}

} // namespace
} // namespace neurocube
