#!/usr/bin/env bash
# Profile one bench binary and print a hot-function report.
#
# Usage: scripts/profile.sh <bench> [args...]
#   bench   bench binary name (e.g. fig12_inference, serve_sweep)
#   args    passed through to the binary
#
# Prefers `perf record`/`perf report` when the host has perf (and the
# kernel allows sampling); otherwise falls back to gprof, building
# the bench tree with -pg -O2 into build-prof/ on first use. Both
# paths honor the bench environment knobs:
#
#   NEUROCUBE_ENGINE=legacy|event|threads   engine override
#   NEUROCUBE_QUICK=1                       reduced workloads
#   NEUROCUBE_BENCH_DIR=<dir>               JSON output directory
#
# Reports land in profile-results/:
#   <bench>.perf.data / <bench>.perf.txt    (perf path)
#   <bench>.gprof.txt                       (gprof path)
# Raw gprof counters (<bench>.gmon.out) stay with the instrumented
# tree in build-prof/ — they are binary, build-specific, and not
# worth committing (profile-results/*.gmon.out is gitignored too).
set -euo pipefail

cd "$(dirname "$0")/.."

bench="${1:?usage: scripts/profile.sh <bench> [args...]}"
shift

outdir="profile-results"
mkdir -p "$outdir"
export NEUROCUBE_BENCH_DIR="${NEUROCUBE_BENCH_DIR:-$outdir}"

have_perf() {
    command -v perf >/dev/null 2>&1 || return 1
    # Sampling may still be forbidden (containers, perf_event_paranoid).
    perf record -o /dev/null -- true >/dev/null 2>&1
}

if have_perf; then
    build="${NEUROCUBE_BUILD:-build}"
    bin="$build/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "error: bench binary '$bin' not built" >&2
        exit 1
    fi
    data="$outdir/$bench.perf.data"
    echo "=== perf record $bench ==="
    perf record -g -o "$data" -- "$bin" "$@"
    perf report -i "$data" --stdio | head -60 \
        | tee "$outdir/$bench.perf.txt"
    echo
    echo "full report: perf report -i $data"
    exit 0
fi

# gprof fallback: needs an instrumented build (-pg keeps symbols and
# emits gmon.out at exit; -O2 so the profile reflects the optimized
# hot loops).
prof_build="build-prof"
if [ ! -d "$prof_build" ]; then
    echo "=== configuring instrumented tree in $prof_build/ ==="
    cmake -B "$prof_build" -S . \
        -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_CXX_FLAGS="-pg -O2 -g" \
        -DCMAKE_EXE_LINKER_FLAGS="-pg" >/dev/null
fi
# Incremental: a no-op when the tree is already current.
cmake --build "$prof_build" --target "$bench" -j"$(nproc)"

bin="$prof_build/bench/$bench"
echo "=== gprof $bench ==="
# gmon.out is written to the current directory at process exit.
rundir="$(mktemp -d)"
(cd "$rundir" && "$OLDPWD/$bin" "$@")
gmon="$prof_build/$bench.gmon.out"
mv "$rundir/gmon.out" "$gmon"
rmdir "$rundir" 2>/dev/null || true

gprof --flat-profile "$bin" "$gmon" \
    | head -40 | tee "$outdir/$bench.gprof.txt"
echo
echo "call graph: gprof $bin $gmon | less"
