#!/usr/bin/env bash
# Run the figure-reproduction bench binaries and collect their
# machine-readable outputs (BENCH_*.json with per-layer bottleneck
# reports) into one directory.
#
# Usage: scripts/bench.sh [outdir] [bench...]
#   outdir  where BENCH_*.json and the captured stdout logs land
#           (default: bench-results)
#   bench   bench binary names to run (default: fig12_inference
#           fig15_memory_noc)
#
# Environment:
#   NEUROCUBE_QUICK=1   reduced workloads for fast iteration
#   NEUROCUBE_BUILD     build directory holding the binaries
#                       (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

outdir="${1:-bench-results}"
shift || true
benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
    benches=(fig12_inference fig15_memory_noc)
fi

build="${NEUROCUBE_BUILD:-build}"
if [ ! -d "$build" ]; then
    echo "error: build directory '$build' not found;" \
         "run: cmake --preset default && cmake --build --preset default" >&2
    exit 1
fi

mkdir -p "$outdir"
export NEUROCUBE_BENCH_DIR="$outdir"

for bench in "${benches[@]}"; do
    bin="$build/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "error: bench binary '$bin' not built" >&2
        exit 1
    fi
    echo "=== $bench ==="
    "$bin" | tee "$outdir/$bench.log"
done

echo
echo "bench outputs in $outdir:"
ls -l "$outdir"
