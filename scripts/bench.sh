#!/usr/bin/env bash
# Run the figure-reproduction bench binaries and collect their
# machine-readable outputs (BENCH_*.json with per-layer bottleneck
# and activity-energy reports, BENCH_*.prom textfile-collector dumps,
# and self-contained BENCH_*.html run reports with spatial heatmaps
# and roofline attribution) into one directory.
#
# Usage: scripts/bench.sh [outdir] [bench...]
#        scripts/bench.sh --compare <baseline-dir> [outdir] [bench...]
#   outdir  where BENCH_*.{json,prom,html} and the captured stdout
#           logs land (default: bench-results)
#   bench   bench binary names to run (default: fig12_inference
#           fig13_training fig15_memory_noc serve_sweep)
#
# --compare diffs the fresh BENCH_*.json against the committed
# baselines in <baseline-dir> (see bench/baselines/): for every
# "total_cycles" value present in both, a regression of more than 5%
# fails the script. BENCH_serve.json is held to a stricter gate: the
# serving simulator is deterministic, so its "total_cycles" and
# "served" values must match the baseline EXACTLY. Baselines record
# their "quick" flag; comparing a quick run against a full baseline
# (or vice versa) is an error.
#
# --compare also runs a trace-overhead gate: quick fig12 with a live
# sampled recorder (NEUROCUBE_TRACE_SAMPLE=1024) must finish within
# 10% wall clock of the same run untraced. This is the
# zero-compromise telemetry contract — sampled tracing is cheap
# enough to leave on. The gate adds two quick fig12 runs.
#
# Environment:
#   NEUROCUBE_QUICK=1   reduced workloads for fast iteration
#   NEUROCUBE_BUILD     build directory holding the binaries
#                       (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

baseline_dir=""
if [ "${1:-}" = "--compare" ]; then
    shift
    baseline_dir="${1:?--compare needs a baseline directory}"
    shift
fi

outdir="${1:-bench-results}"
shift || true
benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
    benches=(fig12_inference fig13_training fig15_memory_noc
             serve_sweep)
fi

build="${NEUROCUBE_BUILD:-build}"
if [ ! -d "$build" ]; then
    echo "error: build directory '$build' not found;" \
         "run: cmake --preset default && cmake --build --preset default" >&2
    exit 1
fi

mkdir -p "$outdir"
export NEUROCUBE_BENCH_DIR="$outdir"

for bench in "${benches[@]}"; do
    bin="$build/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "error: bench binary '$bin' not built" >&2
        exit 1
    fi
    echo "=== $bench ==="
    "$bin" | tee "$outdir/$bench.log"
done

echo
echo "bench outputs in $outdir:"
ls -l "$outdir"

[ -n "$baseline_dir" ] || exit 0

# --compare: ordered "total_cycles" extraction is stable because
# writeBenchJson emits runs and layers in a fixed order.
echo
echo "=== comparing against baselines in $baseline_dir ==="
extract_cycles() {
    grep -o '"total_cycles": *[0-9]*' "$1" | grep -o '[0-9]*$'
}
extract_quick() {
    grep -o '"quick": *\(true\|false\)' "$1" | head -1 \
        | grep -o '\(true\|false\)$'
}
extract_served() {
    grep -o '"served": *[0-9]*' "$1" | grep -o '[0-9]*$'
}

# Informational only: wall clock is host-dependent, so deltas are
# reported but never gate the comparison (cycles are the hard gate).
report_wall() {
    paste -d' ' <(grep -o '"wall_ms": *[0-9.]*' "$2" \
                      | grep -o '[0-9.]*$') \
                <(grep -o '"wall_ms": *[0-9.]*' "$3" \
                      | grep -o '[0-9.]*$') \
        | awk -v name="$1" '
            NF == 2 { base += $1; fresh += $2 }
            END {
                if (base > 0) {
                    printf "  %s: wall %.1fms -> %.1fms (%+.1f%%,"  \
                           " informational)\n",
                           name, base, fresh, 100 * (fresh / base - 1)
                }
            }'
}

fail=0
compared=0
for fresh in "$outdir"/BENCH_*.json; do
    name="$(basename "$fresh")"
    base="$baseline_dir/$name"
    if [ ! -f "$base" ]; then
        echo "  $name: no baseline, skipped"
        continue
    fi
    fresh_quick="$(extract_quick "$fresh")"
    base_quick="$(extract_quick "$base")"
    if [ "$fresh_quick" != "$base_quick" ]; then
        echo "  $name: quick flag mismatch (fresh=$fresh_quick," \
             "baseline=$base_quick) — rerun with matching" \
             "NEUROCUBE_QUICK" >&2
        fail=1
        continue
    fi
    if [ "$name" = "BENCH_serve.json" ]; then
        # The serving simulator is deterministic: cycle counts and
        # served-request counts must match the baseline exactly.
        if [ "$(extract_cycles "$fresh")" = "$(extract_cycles "$base")" ] \
            && [ "$(extract_served "$fresh")" = "$(extract_served "$base")" ]; then
            echo "  $name: total_cycles and served match exactly"
        else
            echo "  $name: deterministic serving results diverged" \
                 "from baseline (total_cycles/served must match" \
                 "exactly)" >&2
            diff <(extract_cycles "$base") <(extract_cycles "$fresh") \
                | head -5 || true
            fail=1
        fi
        report_wall "$name" "$base" "$fresh"
        compared=$((compared + 1))
        continue
    fi
    # Pair up the ordered cycle counts and flag >5% regressions.
    verdict="$(paste -d' ' <(extract_cycles "$base") \
                           <(extract_cycles "$fresh") \
        | awk -v name="$name" '
            NF == 2 && $1 > 0 {
                ratio = $2 / $1
                if (ratio > 1.05) {
                    printf "  %s: cycle regression %d -> %d (+%.1f%%)\n",
                           name, $1, $2, 100 * (ratio - 1)
                    bad = 1
                }
                n += 1
            }
            END {
                if (!bad)
                    printf "  %s: %d cycle counts within 5%%\n", name, n
                exit bad
            }')" || fail=1
    echo "$verdict"
    report_wall "$name" "$base" "$fresh"
    compared=$((compared + 1))
done

if [ "$compared" -eq 0 ]; then
    echo "error: no BENCH_*.json had a baseline in $baseline_dir" >&2
    exit 1
fi

# Trace-overhead gate: sampled tracing must be cheap enough to leave
# on. Two back-to-back quick fig12 runs — trace-off, then a live
# sampled recorder exporting chrome JSON + timeseries CSV — and the
# traced run's summed wall_ms must stay within 10%.
echo
echo "=== trace-overhead gate (quick fig12, sample=1024) ==="
gate_bin="$build/bench/fig12_inference"
if [ ! -x "$gate_bin" ]; then
    echo "error: $gate_bin not built (needed for the trace gate)" >&2
    exit 1
fi
gate_dir="$(mktemp -d)"
trap 'rm -rf "$gate_dir"' EXIT
mkdir -p "$gate_dir/off" "$gate_dir/on"
NEUROCUBE_QUICK=1 NEUROCUBE_BENCH_DIR="$gate_dir/off" \
    "$gate_bin" >/dev/null
NEUROCUBE_QUICK=1 NEUROCUBE_BENCH_DIR="$gate_dir/on" \
    NEUROCUBE_TRACE_EXPORT="$gate_dir/on" \
    NEUROCUBE_TRACE_SAMPLE=1024 \
    "$gate_bin" >/dev/null
wall_sum() {
    grep -o '"wall_ms": *[0-9.]*' "$1" | grep -o '[0-9.]*$' \
        | awk '{ s += $1 } END { print s }'
}
off_ms="$(wall_sum "$gate_dir/off/BENCH_fig12.json")"
on_ms="$(wall_sum "$gate_dir/on/BENCH_fig12.json")"
awk -v off="$off_ms" -v on="$on_ms" '
    BEGIN {
        if (off <= 0) {
            printf "  trace gate: unusable wall_ms baseline (%s)\n",
                   off
            exit 1
        }
        ratio = on / off
        printf "  traced %.0fms vs untraced %.0fms (x%.3f)\n",
               on, off, ratio
        if (ratio > 1.10) {
            printf "  trace gate: sampled tracing costs more than" \
                   " 10%% wall clock\n"
            exit 1
        }
    }' || fail=1
if [ "$fail" -ne 0 ]; then
    echo "bench comparison FAILED (cycle regression, flag mismatch," \
         "or trace overhead)" >&2
    exit 1
fi
echo "bench comparison OK"
