#!/usr/bin/env bash
# Build and test every supported configuration:
#   default  - RelWithDebInfo with trace instrumentation compiled in
#   asan     - address + undefined-behaviour sanitizers
#   notrace  - NC_TRACE compiled out (the zero-overhead configuration)
#   tsan     - thread sanitizer over the trace-ring consumer thread
#              (runs only test_trace/test_metrics; see CMakePresets)
#
# Usage: scripts/check.sh [preset...]   (default: all four)
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(default asan notrace tsan)
fi

for preset in "${presets[@]}"; do
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$(nproc)"
    echo "=== [$preset] test ==="
    ctest --preset "$preset"
done

echo "all presets passed: ${presets[*]}"
