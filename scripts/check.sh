#!/usr/bin/env bash
# Build and test every supported configuration:
#   default  - RelWithDebInfo with trace instrumentation compiled in
#   asan     - address + undefined-behaviour sanitizers
#   notrace  - NC_TRACE compiled out (the zero-overhead configuration)
#   tsan     - thread sanitizer over the trace-ring consumer thread
#              and the ThreadedLanes engine workers (runs test_trace,
#              test_metrics, test_engine_threads and the quick engine
#              fuzz; see CMakePresets)
#
# The presets exclude the "long" ctest label (the 100-seed engine
# fuzz); run `ctest` directly in a build dir for the full profile.
#
# Usage: scripts/check.sh [preset...]   (default: all four)
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
    presets=(default asan notrace tsan)
fi

for preset in "${presets[@]}"; do
    echo "=== [$preset] configure ==="
    cmake --preset "$preset"
    echo "=== [$preset] build ==="
    cmake --build --preset "$preset" -j "$(nproc)"
    echo "=== [$preset] test ==="
    ctest --preset "$preset"
done

# Quick-mode serving smoke: run the serve_sweep bench against the
# committed baseline — the sweep is deterministic, so its cycle and
# served-request counts must match bench/baselines/BENCH_serve.json
# exactly (see bench.sh --compare).
case " ${presets[*]} " in
*" default "*)
    echo "=== [default] serve_sweep smoke ==="
    smoke_dir="$(mktemp -d)"
    trap 'rm -rf "$smoke_dir"' EXIT
    NEUROCUBE_QUICK=1 scripts/bench.sh --compare bench/baselines \
        "$smoke_dir" serve_sweep

    # HTML report smoke: the self-contained report must be valid
    # (template markers present) and byte-deterministic across two
    # identical runs — wall_ms is host wall-clock, so it is the one
    # field normalized before the comparison.
    echo "=== [default] html report smoke ==="
    build="${NEUROCUBE_BUILD:-build}"
    mkdir -p "$smoke_dir/report_a" "$smoke_dir/report_b"
    NEUROCUBE_QUICK=1 NEUROCUBE_BENCH_DIR="$smoke_dir/report_a" \
        "$build/bench/table3_comparison" >/dev/null
    NEUROCUBE_QUICK=1 NEUROCUBE_BENCH_DIR="$smoke_dir/report_b" \
        "$build/bench/table3_comparison" >/dev/null
    report="$smoke_dir/report_a/BENCH_table3.html"
    for marker in '<!DOCTYPE html>' 'id="nc-data"' '</html>'; do
        if ! grep -qF "$marker" "$report"; then
            echo "FAIL: $report missing '$marker'"
            exit 1
        fi
    done
    normalize_wall() {
        sed -E 's/"wall_ms":[0-9.eE+-]+/"wall_ms":0/g' "$1"
    }
    if ! cmp -s <(normalize_wall "$report") \
            <(normalize_wall "$smoke_dir/report_b/BENCH_table3.html")
    then
        echo "FAIL: BENCH_table3.html differs across identical runs"
        exit 1
    fi
    echo "html report smoke passed"
    ;;
esac

echo "all presets passed: ${presets[*]}"
